//! Blockwise linear-regression prediction (SZ 2.x-style extension).
//!
//! SZ 1.4 (the paper's substrate) predicts every point with the Lorenzo
//! stencil. SZ 2 added a second predictor: a per-block linear model
//! `v ≈ b0 + b1·i + b2·j + b3·k` fitted by least squares, with the better
//! predictor chosen per block. Regression wins on smooth gradients (it
//! ignores the noise that derails a 1-point stencil at loose bounds);
//! Lorenzo wins on fine texture. We reproduce that hybrid as an optional
//! mode on top of the paper's pipeline.
//!
//! The fitted coefficients are rounded to `f32` before use so encoder and
//! decoder predict with bit-identical models.

use pwrel_data::{Dims, Float};

/// Block edge length used by the hybrid predictor (SZ 2 uses 6).
pub const BLOCK_EDGE: usize = 6;

/// A linear model over local block coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Intercept.
    pub b0: f32,
    /// Slope along x (fastest axis).
    pub b1: f32,
    /// Slope along y.
    pub b2: f32,
    /// Slope along z.
    pub b3: f32,
}

impl LinearModel {
    /// Predicted value at local coordinates `(i, j, k)`.
    #[inline]
    pub fn predict(&self, i: usize, j: usize, k: usize) -> f64 {
        self.b0 as f64
            + self.b1 as f64 * i as f64
            + self.b2 as f64 * j as f64
            + self.b3 as f64 * k as f64
    }

    /// Serialized size in bytes.
    pub const NBYTES: usize = 16;

    /// Appends the model as four little-endian `f32`s.
    pub fn write(&self, out: &mut Vec<u8>) {
        for c in [self.b0, self.b1, self.b2, self.b3] {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// Reads a model written by [`LinearModel::write`]. `None` on a
    /// truncated buffer — forged streams reach here (lint L1), so the
    /// reads are structurally panic-free.
    pub fn read(bytes: &[u8]) -> Option<Self> {
        let f = |o: usize| {
            bytes
                .get(o..)
                .and_then(|tail| tail.first_chunk::<4>())
                .map(|chunk| f32::from_le_bytes(*chunk))
        };
        Some(Self {
            b0: f(0)?,
            b1: f(4)?,
            b2: f(8)?,
            b3: f(12)?,
        })
    }
}

/// One block's extent and origin within the grid.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// Origin (x, y, z).
    pub origin: (usize, usize, usize),
    /// Extent along each axis (≤ [`BLOCK_EDGE`]).
    pub extent: (usize, usize, usize),
}

/// Number of blocks [`blocks`] would produce, without allocating — safe
/// to evaluate on untrusted dims before any reservation.
pub fn block_count(dims: Dims) -> u64 {
    if dims.is_empty() {
        return 0;
    }
    let c = |n: usize| n.max(1).div_ceil(BLOCK_EDGE) as u64;
    c(dims.nx) * c(dims.ny) * c(dims.nz)
}

/// Enumerates blocks in raster order (x fastest).
pub fn blocks(dims: Dims) -> Vec<Block> {
    let step = BLOCK_EDGE;
    let mut out = Vec::new();
    let mut z = 0;
    while z < dims.nz.max(1) {
        let ez = step.min(dims.nz.max(1) - z);
        let mut y = 0;
        while y < dims.ny.max(1) {
            let ey = step.min(dims.ny.max(1) - y);
            let mut x = 0;
            while x < dims.nx.max(1) {
                let ex = step.min(dims.nx.max(1) - x);
                out.push(Block {
                    origin: (x, y, z),
                    extent: (ex, ey, ez),
                });
                x += step;
            }
            y += step;
        }
        z += step;
    }
    if dims.is_empty() {
        out.clear();
    }
    out
}

/// Fits the least-squares linear model over one block of `data`.
///
/// The block grid is rectangular, so the centered per-axis coordinates are
/// orthogonal and each slope has the closed form `Σ(c−c̄)v / Σ(c−c̄)²`.
pub fn fit<F: Float>(data: &[F], dims: Dims, block: &Block) -> LinearModel {
    let (ox, oy, oz) = block.origin;
    let (ex, ey, ez) = block.extent;
    let n = (ex * ey * ez) as f64;
    let (mx, my, mz) = (
        (ex as f64 - 1.0) / 2.0,
        (ey as f64 - 1.0) / 2.0,
        (ez as f64 - 1.0) / 2.0,
    );

    let mut sum_v = 0.0f64;
    let mut sxv = 0.0f64;
    let mut syv = 0.0f64;
    let mut szv = 0.0f64;
    for dk in 0..ez {
        for dj in 0..ey {
            for di in 0..ex {
                let v = data[dims.index(ox + di, oy + dj, oz + dk)].to_f64();
                let v = if v.is_finite() { v } else { 0.0 };
                sum_v += v;
                sxv += (di as f64 - mx) * v;
                syv += (dj as f64 - my) * v;
                szv += (dk as f64 - mz) * v;
            }
        }
    }
    // Σ(c−c̄)² over the full block factorizes per axis.
    let var = |e: usize| -> f64 {
        let m = (e as f64 - 1.0) / 2.0;
        (0..e).map(|c| (c as f64 - m).powi(2)).sum::<f64>()
    };
    let sxx = var(ex) * (ey * ez) as f64;
    let syy = var(ey) * (ex * ez) as f64;
    let szz = var(ez) * (ex * ey) as f64;
    let b1 = if sxx > 0.0 { sxv / sxx } else { 0.0 };
    let b2 = if syy > 0.0 { syv / syy } else { 0.0 };
    let b3 = if szz > 0.0 { szv / szz } else { 0.0 };
    let b0 = sum_v / n - b1 * mx - b2 * my - b3 * mz;
    LinearModel {
        b0: b0 as f32,
        b1: b1 as f32,
        b2: b2 as f32,
        b3: b3 as f32,
    }
}

/// Sum of absolute regression residuals over a block (selection metric).
pub fn regression_sae<F: Float>(data: &[F], dims: Dims, block: &Block, model: &LinearModel) -> f64 {
    let (ox, oy, oz) = block.origin;
    let (ex, ey, ez) = block.extent;
    let mut sae = 0.0f64;
    for dk in 0..ez {
        for dj in 0..ey {
            for di in 0..ex {
                let v = data[dims.index(ox + di, oy + dj, oz + dk)].to_f64();
                if v.is_finite() {
                    sae += (v - model.predict(di, dj, dk)).abs();
                }
            }
        }
    }
    sae
}

/// Sum of absolute Lorenzo residuals over a block, predicting from the
/// *original* values (a fast proxy for the decompressed-neighbour stencil
/// used in the real pass).
pub fn lorenzo_sae<F: Float>(data: &[F], dims: Dims, block: &Block) -> f64 {
    let (ox, oy, oz) = block.origin;
    let (ex, ey, ez) = block.extent;
    let mut sae = 0.0f64;
    for dk in 0..ez {
        for dj in 0..ey {
            for di in 0..ex {
                let (i, j, k) = (ox + di, oy + dj, oz + dk);
                let v = data[dims.index(i, j, k)].to_f64();
                if v.is_finite() {
                    let pred = crate::lorenzo::predict(data, dims, i, j, k);
                    sae += (v - pred).abs();
                }
            }
        }
    }
    sae
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_grid_exactly_once() {
        for dims in [Dims::d1(13), Dims::d2(7, 11), Dims::d3(6, 8, 13)] {
            let mut seen = vec![0u8; dims.len()];
            for b in blocks(dims) {
                let (ox, oy, oz) = b.origin;
                let (ex, ey, ez) = b.extent;
                assert!(ex <= BLOCK_EDGE && ey <= BLOCK_EDGE && ez <= BLOCK_EDGE);
                for dk in 0..ez {
                    for dj in 0..ey {
                        for di in 0..ex {
                            seen[dims.index(ox + di, oy + dj, oz + dk)] += 1;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{dims}");
        }
    }

    #[test]
    fn block_count_matches_enumeration() {
        for dims in [
            Dims::d1(0),
            Dims::d1(1),
            Dims::d1(13),
            Dims::d2(7, 11),
            Dims::d3(6, 8, 13),
            Dims::d3(1, 1, 1),
        ] {
            assert_eq!(block_count(dims), blocks(dims).len() as u64, "{dims}");
        }
    }

    #[test]
    fn fit_recovers_exact_linear_field() {
        let dims = Dims::d3(6, 6, 6);
        let mut data = vec![0.0f32; dims.len()];
        for k in 0..6 {
            for j in 0..6 {
                for i in 0..6 {
                    data[dims.index(i, j, k)] =
                        2.0 + 0.5 * i as f32 - 1.5 * j as f32 + 3.0 * k as f32;
                }
            }
        }
        let b = blocks(dims)[0];
        let m = fit(&data, dims, &b);
        assert!((m.b0 - 2.0).abs() < 1e-4, "{m:?}");
        assert!((m.b1 - 0.5).abs() < 1e-5);
        assert!((m.b2 + 1.5).abs() < 1e-5);
        assert!((m.b3 - 3.0).abs() < 1e-5);
        assert!(regression_sae(&data, dims, &b, &m) < 1e-2);
    }

    #[test]
    fn fit_handles_partial_blocks() {
        let dims = Dims::d2(7, 8); // blocks of 6 + remainder
        let data: Vec<f32> = (0..dims.len()).map(|i| i as f32).collect();
        for b in blocks(dims) {
            let m = fit(&data, dims, &b);
            // Raster data is linear in (i, j): residuals must vanish.
            assert!(
                regression_sae(&data, dims, &b, &m) < 1e-2,
                "block {:?}: {m:?}",
                b.origin
            );
        }
    }

    #[test]
    fn model_serialization_round_trips() {
        let m = LinearModel {
            b0: 1.5,
            b1: -0.25,
            b2: 1e-8,
            b3: 3e7,
        };
        let mut buf = Vec::new();
        m.write(&mut buf);
        assert_eq!(buf.len(), LinearModel::NBYTES);
        assert_eq!(LinearModel::read(&buf), Some(m));
        assert_eq!(LinearModel::read(&buf[..10]), None);
    }

    #[test]
    fn constant_block_has_zero_slopes() {
        let dims = Dims::d1(6);
        let data = vec![7.0f32; 6];
        let b = blocks(dims)[0];
        let m = fit(&data, dims, &b);
        assert_eq!(m.b1, 0.0);
        assert!((m.b0 - 7.0).abs() < 1e-6);
    }
}
