#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately treats NaN as invalid; clippy prefers
// partial_cmp, which would hide that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

//! SZ-like prediction-based error-bounded lossy compressor.
//!
//! Re-implements the SZ 1.4 pipeline the paper builds on (Sec. IV-A):
//!
//! 1. **Prediction** — the Lorenzo predictor over 1/3/7 previously
//!    *decompressed* neighbours for 1D/2D/3D data (using decompressed values
//!    prevents error propagation at decompression time),
//! 2. **Linear-scaling quantization** — the prediction error is mapped to an
//!    integer code `q = round(err / 2eb)`; points whose reconstruction would
//!    exceed the bound are stored verbatim ("unpredictable"),
//! 3. **Entropy coding** — a custom canonical Huffman coder over the
//!    quantization codes, followed by an optional LZ (gzip-like) pass.
//!
//! Two modes:
//!
//! * [`SzCompressor::compress_abs`] — absolute error bound (the mode the
//!   log-transform scheme targets, "SZ_T" when wrapped),
//! * [`SzCompressor::compress_pwr`] — the *blockwise* point-wise-relative
//!   mode of SZ 1.4 ("SZ_PWR"): the data is split into blocks and each block
//!   is compressed with an absolute bound derived from the smallest
//!   magnitude in the block. This is the baseline whose compression-ratio
//!   collapse on spiky data motivates the paper.

pub mod adaptive;
mod engine;
mod format;
mod hybrid;
mod lorenzo;
mod pwr_spatial;
pub mod regression;
pub mod stages;
mod unpred;

pub use adaptive::estimate_capacity;
pub use engine::{quantization_codes, EbSpec, DEFAULT_CAPACITY};
pub use format::{SzMode, SzStream};
pub use stages::{HuffmanStage, LinearQuantizer, LorenzoPredictor, LzStage};

use pwrel_data::{AbsErrorCodec, CodecError, Dims, Float};
use pwrel_kernels::{FusedOutput, LogFusedCodec, LogPlan};
use pwrel_trace::{noop, stage, Recorder, Span, StageTimer};

/// Configuration + entry points for the SZ-like codec.
///
/// ```
/// use pwrel_sz::SzCompressor;
/// use pwrel_data::Dims;
///
/// let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
/// let sz = SzCompressor::default();
/// let stream = sz.compress_abs(&data, Dims::d1(4096), 1e-3).unwrap();
/// let (back, _) = sz.decompress::<f32>(&stream).unwrap();
/// for (a, b) in data.iter().zip(&back) {
///     assert!((a - b).abs() <= 1e-3);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SzCompressor {
    /// Number of quantization intervals (SZ's `quantization_intervals`).
    /// Must be an even number ≥ 4. Default 65536.
    pub capacity: u32,
    /// Apply the LZ lossless pass over the entropy-coded stream (SZ's
    /// optional gzip stage III). Default true.
    pub lossless_pass: bool,
    /// Block length (in points, raster order) for the PWR mode. Default 256.
    pub pwr_block_len: usize,
    /// Use the hybrid Lorenzo/regression predictor for absolute-bound
    /// compression (SZ 2-style extension). Default false (the paper's
    /// SZ 1.4 pipeline).
    pub hybrid_predictor: bool,
}

impl Default for SzCompressor {
    fn default() -> Self {
        Self {
            capacity: DEFAULT_CAPACITY,
            lossless_pass: true,
            pwr_block_len: 256,
            hybrid_predictor: false,
        }
    }
}

impl SzCompressor {
    /// Builds a compressor whose quantization capacity is estimated from a
    /// sample of the data's prediction errors (SZ 1.4's adaptive interval
    /// selection). The bound must be the one later passed to
    /// [`SzCompressor::compress_abs`].
    pub fn adaptive<F: Float>(data: &[F], dims: Dims, bound: f64) -> Self {
        Self {
            capacity: adaptive::estimate_capacity(data, dims, bound, 256, DEFAULT_CAPACITY),
            ..Self::default()
        }
    }

    /// Validates configuration invariants.
    fn check_config(&self) -> Result<(), CodecError> {
        if self.capacity < 4 || !self.capacity.is_multiple_of(2) {
            return Err(CodecError::InvalidArgument(
                "capacity must be even and >= 4",
            ));
        }
        if self.pwr_block_len == 0 {
            return Err(CodecError::InvalidArgument("pwr_block_len must be > 0"));
        }
        Ok(())
    }

    /// Compresses with an absolute error bound: every decompressed value
    /// satisfies `|x - x'| <= bound`.
    pub fn compress_abs<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        bound: f64,
    ) -> Result<Vec<u8>, CodecError> {
        self.check_config()?;
        if !(bound > 0.0) || !bound.is_finite() {
            return Err(CodecError::InvalidArgument("bound must be finite and > 0"));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        engine::compress(data, dims, EbSpec::Abs(bound), self, noop())
    }

    /// Compresses with SZ's blockwise point-wise relative error bound:
    /// every decompressed value satisfies `|x - x'| <= rel_bound * |x|`.
    ///
    /// Mirrors SZ 1.4's PW_REL mode: the absolute bound in each block is
    /// `rel_bound * min|x|` over the block (quantized down to a power of
    /// two so it can be stored in one byte). Blocks containing zeros fall
    /// back to a tiny bound derived from the block's smallest *non-zero*
    /// magnitude, so exact zeros are reconstructed only approximately —
    /// the deficiency the paper notes with `*` in Table IV.
    pub fn compress_pwr<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rel_bound: f64,
    ) -> Result<Vec<u8>, CodecError> {
        self.check_config()?;
        if !(rel_bound > 0.0) || !rel_bound.is_finite() {
            return Err(CodecError::InvalidArgument(
                "rel_bound must be finite and > 0",
            ));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        if dims.rank() >= 2 {
            // Multidimensional data uses true spatial blocks (DRBSD-2);
            // 1D keeps raster runs of `pwr_block_len` points.
            return pwr_spatial::compress(data, dims, rel_bound, self);
        }
        engine::compress(
            data,
            dims,
            EbSpec::BlockRel {
                rel_bound,
                block_len: self.pwr_block_len,
            },
            self,
            noop(),
        )
    }

    /// Compresses with an absolute error bound using the hybrid
    /// Lorenzo/regression predictor (SZ 2-style extension): each 6^d block
    /// picks whichever of the two predictors fits it better. Wins on
    /// fields with strong local gradients; never loses much elsewhere.
    pub fn compress_abs_hybrid<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        bound: f64,
    ) -> Result<Vec<u8>, CodecError> {
        self.check_config()?;
        if !(bound > 0.0) || !bound.is_finite() {
            return Err(CodecError::InvalidArgument("bound must be finite and > 0"));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        hybrid::compress(data, dims, bound, self)
    }

    /// Decompresses any SZ stream (any mode).
    pub fn decompress<F: Float>(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        engine::decompress(bytes, noop())
    }

    /// [`SzCompressor::decompress`] with per-stage recording (LZ unwrap,
    /// Huffman decode, reconstruction sweep).
    pub fn decompress_traced<F: Float>(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        engine::decompress(bytes, rec)
    }

    /// [`SzCompressor::decompress_traced`] with entropy sub-stream
    /// fan-out: interleaved Huffman payloads decode their four lanes
    /// through `exec` (e.g. the worker pool) instead of one fused loop.
    /// Must be called from outside any pool task when `exec` is the pool
    /// itself — nested submission deadlocks.
    pub fn decompress_pooled<F: Float>(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        engine::decompress_pooled(bytes, rec, exec)
    }
}

impl<F: Float> AbsErrorCodec<F> for SzCompressor {
    fn name(&self) -> &'static str {
        "sz"
    }

    fn compress_abs(&self, data: &[F], dims: Dims, bound: f64) -> Result<Vec<u8>, CodecError> {
        self.compress_abs_traced(data, dims, bound, noop())
    }

    fn decompress_abs(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        self.decompress(bytes)
    }

    fn compress_abs_traced(
        &self,
        data: &[F],
        dims: Dims,
        bound: f64,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        if self.hybrid_predictor {
            // The hybrid coder is block-structured and not internally
            // instrumented; it reports as one encode stage.
            let _enc = Span::enter(rec, stage::ENCODE);
            self.compress_abs_hybrid(data, dims, bound)
        } else {
            self.check_config()?;
            if !(bound > 0.0) || !bound.is_finite() {
                return Err(CodecError::InvalidArgument("bound must be finite and > 0"));
            }
            if data.len() != dims.len() {
                return Err(CodecError::InvalidArgument("data length != dims"));
            }
            engine::compress(data, dims, EbSpec::Abs(bound), self, rec)
        }
    }

    fn decompress_abs_traced(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        self.decompress_traced(bytes, rec)
    }

    fn decompress_abs_pooled(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        self.decompress_pooled(bytes, rec, exec)
    }
}

impl<F: Float> LogFusedCodec<F> for SzCompressor {
    /// Single streaming pass: log transform, Lorenzo prediction, and
    /// quantization fused per [`pwrel_kernels::CHUNK`]-sized window, sign
    /// bitmap collected in the same sweep. The hybrid-predictor
    /// configuration has block-structured access that defeats the linear
    /// window, so it maps into a buffer first (still batched) and reuses
    /// the hybrid coder — the stream contract holds either way.
    fn compress_fused(
        &self,
        data: &[F],
        dims: Dims,
        plan: &LogPlan,
    ) -> Result<FusedOutput, CodecError> {
        self.compress_fused_traced(data, dims, plan, noop())
    }

    fn compress_fused_traced(
        &self,
        data: &[F],
        dims: Dims,
        plan: &LogPlan,
        rec: &dyn Recorder,
    ) -> Result<FusedOutput, CodecError> {
        self.check_config()?;
        if !(plan.abs_bound > 0.0) || !plan.abs_bound.is_finite() {
            return Err(CodecError::InvalidArgument("bound must be finite and > 0"));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        if self.hybrid_predictor {
            let mut mapped: Vec<F> = vec![F::zero(); data.len()];
            let mut scratch = [0f64; pwrel_kernels::CHUNK];
            let mut signs = Vec::with_capacity(if plan.any_negative { data.len() } else { 0 });
            {
                let mut map_timer = StageTimer::new(rec, stage::TRANSFORM);
                for (src, out) in data
                    .chunks(pwrel_kernels::CHUNK)
                    .zip(mapped.chunks_mut(pwrel_kernels::CHUNK))
                {
                    map_timer.time(|| plan.map_chunk(src, out, &mut scratch, &mut signs));
                }
                map_timer.finish();
            }
            let stream = {
                let _enc = Span::enter(rec, stage::ENCODE);
                self.compress_abs_hybrid(&mapped, dims, plan.abs_bound)?
            };
            return Ok(FusedOutput {
                stream,
                signs: plan.any_negative.then_some(signs),
            });
        }
        let (stream, signs) = engine::compress_fused(data, dims, plan, self, rec)?;
        Ok(FusedOutput { stream, signs })
    }
}
