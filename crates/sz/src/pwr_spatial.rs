//! Spatial-block PW_REL mode for 2D/3D data.
//!
//! The DRBSD-2 design the paper describes splits *multidimensional* data
//! into non-overlapping spatial blocks and compresses each with the
//! absolute bound `b_r · min|x|` over the block. Spatially coherent blocks
//! have more homogeneous magnitudes than raster runs, so this is the
//! faithful (and slightly stronger) version of SZ_PWR for rank ≥ 2; 1D
//! data keeps the raster-run implementation in `engine`.
//!
//! Blocks are the 6^d partition shared with the hybrid predictor;
//! traversal is block-by-block on both sides, with Lorenzo predicting from
//! the global decompressed buffer.

use crate::format::{SzMode, SzStream};
use crate::regression;
use crate::{lorenzo, unpred, SzCompressor};
use pwrel_bitstream::{BitReader, BitWriter};
use pwrel_data::{CodecError, Dims, Float};
use pwrel_lossless::huffman;

/// Per-block power-of-two bound exponent (see `engine::block_exponents`
/// for the 1D analogue and the zero-block rationale).
fn block_exponent<F: Float>(data: &[F], dims: Dims, b: &regression::Block, rel: f64) -> i32 {
    let (ox, oy, oz) = b.origin;
    let (ex, ey, ez) = b.extent;
    let mut min_mag = f64::INFINITY;
    for dk in 0..ez {
        for dj in 0..ey {
            for di in 0..ex {
                let m = data[dims.index(ox + di, oy + dj, oz + dk)].to_f64().abs();
                if m > 0.0 && m < min_mag {
                    min_mag = m;
                }
            }
        }
    }
    if min_mag.is_infinite() {
        -1074
    } else {
        let e = (rel * min_mag).log2();
        if e.is_finite() {
            (e.floor() as i64).clamp(-1074, 1000) as i32
        } else {
            -1074
        }
    }
}

/// Compresses with the spatial-block PW_REL mode (rank ≥ 2).
pub(crate) fn compress<F: Float>(
    data: &[F],
    dims: Dims,
    rel_bound: f64,
    cfg: &SzCompressor,
) -> Result<Vec<u8>, CodecError> {
    let capacity = cfg.capacity;
    let radius = (capacity / 2) as i64;
    let blist = regression::blocks(dims);
    let exps: Vec<i32> = blist
        .iter()
        .map(|b| block_exponent(data, dims, b, rel_bound))
        .collect();

    let n = data.len();
    let mut codes: Vec<u32> = Vec::with_capacity(n);
    let mut unpred_w = BitWriter::new();
    let mut n_unpred = 0u64;
    let mut dec: Vec<F> = vec![F::zero(); n];

    for (bi, b) in blist.iter().enumerate() {
        let eb = (exps[bi] as f64).exp2();
        let (ox, oy, oz) = b.origin;
        let (ex, ey, ez) = b.extent;
        for dk in 0..ez {
            for dj in 0..ey {
                for di in 0..ex {
                    let (i, j, k) = (ox + di, oy + dj, oz + dk);
                    let idx = dims.index(i, j, k);
                    let x = data[idx];
                    let mut done = false;
                    if x.is_finite() {
                        let pred = lorenzo::predict(&dec, dims, i, j, k);
                        let qf = ((x.to_f64() - pred) / (2.0 * eb)).round();
                        if qf.is_finite() && qf.abs() < radius as f64 {
                            let q = qf as i64;
                            let val = F::from_f64(pred + 2.0 * eb * q as f64);
                            if val.is_finite() && (val.to_f64() - x.to_f64()).abs() <= eb {
                                codes.push((radius + q) as u32);
                                dec[idx] = val;
                                done = true;
                            }
                        }
                    }
                    if !done {
                        codes.push(0);
                        dec[idx] = unpred::write(&mut unpred_w, x, eb);
                        n_unpred += 1;
                    }
                }
            }
        }
    }

    let stream = SzStream {
        float_bits: F::BITS as u8,
        dims,
        capacity,
        mode: SzMode::PwrSpatial {
            rel_bound,
            block_exps: exps,
        },
        codes_buf: huffman::encode_symbols(&codes, capacity as usize),
        n_unpred,
        unpred_bytes: unpred_w.into_bytes(),
    };
    Ok(stream.serialize(cfg.lossless_pass))
}

/// Decompresses a `PwrSpatial` stream.
// audit:allow-fn(L1,L5): `block_exps.len() == blist.len()` and
// `codes.len() == n` are checked before the loop; `dec` holds n elements
// and `dims.index` stays below n for in-grid points, so the per-block
// indexing cannot go out of bounds. The same invariant covers the taint
// lint: `idx` derives from header `dims`, but only through in-grid
// coordinates of blocks partitioned from those same dims.
pub(crate) fn decompress<F: Float>(stream: &SzStream) -> Result<(Vec<F>, Dims), CodecError> {
    let block_exps = match &stream.mode {
        SzMode::PwrSpatial { block_exps, .. } => block_exps,
        _ => return Err(CodecError::Corrupt("not a spatial PWR stream")),
    };
    let dims = stream.dims;
    let n = dims.len();
    let radius = (stream.capacity / 2) as i64;
    let blist = regression::blocks(dims);
    if blist.len() != block_exps.len() {
        return Err(CodecError::Corrupt("spatial block count mismatch"));
    }

    let mut pos = 0usize;
    let codes = huffman::decode_symbols(&stream.codes_buf, &mut pos)?;
    if codes.len() != n {
        return Err(CodecError::Corrupt("code count != point count"));
    }

    let mut unpred_r = BitReader::new(&stream.unpred_bytes);
    let mut dec: Vec<F> = vec![F::zero(); n];
    let mut code_idx = 0usize;

    for (bi, b) in blist.iter().enumerate() {
        let eb = (block_exps[bi] as f64).exp2();
        let (ox, oy, oz) = b.origin;
        let (ex, ey, ez) = b.extent;
        for dk in 0..ez {
            for dj in 0..ey {
                for di in 0..ex {
                    let (i, j, k) = (ox + di, oy + dj, oz + dk);
                    let idx = dims.index(i, j, k);
                    let code = codes[code_idx];
                    code_idx += 1;
                    let val = if code == 0 {
                        unpred::read::<F>(&mut unpred_r, eb)?
                    } else {
                        if code as i64 >= stream.capacity as i64 {
                            return Err(CodecError::Corrupt("code out of range"));
                        }
                        let q = code as i64 - radius;
                        let pred = lorenzo::predict(&dec, dims, i, j, k);
                        F::from_f64(pred + 2.0 * eb * q as f64)
                    };
                    dec[idx] = val;
                }
            }
        }
    }
    Ok((dec, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::grf;

    fn sz() -> SzCompressor {
        SzCompressor::default()
    }

    fn check_rel(data: &[f32], dims: Dims, br: f64) -> Vec<u8> {
        let bytes = sz().compress_pwr(data, dims, br).unwrap();
        let (dec, d2) = sz().decompress::<f32>(&bytes).unwrap();
        assert_eq!(d2, dims);
        for (idx, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            if a != 0.0 {
                let rel = ((a as f64 - b as f64) / a as f64).abs();
                assert!(rel <= br, "idx {idx}: rel {rel} > {br}");
            }
        }
        bytes
    }

    #[test]
    fn spatial_pwr_bounded_2d_3d() {
        let d2 = Dims::d2(50, 60);
        let f2: Vec<f32> = grf::gaussian_field(d2, 61, 2, 2)
            .iter()
            .map(|v| v + 3.0)
            .collect();
        check_rel(&f2, d2, 1e-2);
        let d3 = Dims::d3(13, 14, 15);
        let f3 = grf::gaussian_field(d3, 62, 1, 2);
        check_rel(&f3, d3, 1e-3);
    }

    #[test]
    fn spatial_blocks_beat_raster_runs_on_banded_2d_data() {
        // Rows alternate between tiny and large magnitudes. Raster runs of
        // 256 points mix both (tiny min everywhere); 6x6 spatial blocks
        // also straddle rows here, BUT with vertically banded data the
        // spatial advantage shows: make *columns* alternate instead, so a
        // raster run always hits tiny values while a 6-wide block inside a
        // band does not.
        let dims = Dims::d2(60, 60);
        let mut data = vec![0.0f32; dims.len()];
        for j in 0..60 {
            for i in 0..60 {
                let band_large = (j / 6) % 2 == 0;
                let mag = if band_large { 1000.0 } else { 1e-3 };
                data[dims.index(i, j, 0)] = mag * (1.0 + 0.01 * ((i + j) as f32 * 0.1).sin());
            }
        }
        let spatial = check_rel(&data, dims, 1e-2);
        // Compare against the 1D raster-run implementation on the same
        // data flattened (forces runs across bands).
        let flat_dims = Dims::d1(dims.len());
        let raster = sz().compress_pwr(&data, flat_dims, 1e-2).unwrap();
        assert!(
            spatial.len() < raster.len(),
            "spatial {} vs raster {}",
            spatial.len(),
            raster.len()
        );
    }

    #[test]
    fn zeros_in_blocks_decode_approximately_like_sz14() {
        // Mixed blocks approximate zeros (paper's `*`); all-zero blocks
        // stay exact.
        let dims = Dims::d2(24, 24);
        let mut data = vec![0.0f32; dims.len()];
        for j in 12..24 {
            for i in 0..24 {
                data[dims.index(i, j, 0)] = 5.0 + (i as f32) * 0.01;
            }
        }
        data[dims.index(3, 12, 0)] = 0.0; // a zero inside a non-zero block
        let bytes = sz().compress_pwr(&data, dims, 1e-2).unwrap();
        let (dec, _) = sz().decompress::<f32>(&bytes).unwrap();
        // All-zero half exact:
        for j in 0..6 {
            for i in 0..24 {
                assert_eq!(dec[dims.index(i, j, 0)], 0.0);
            }
        }
    }

    #[test]
    fn f64_spatial_path() {
        let dims = Dims::d3(8, 9, 10);
        let data: Vec<f64> = (0..dims.len()).map(|i| 1e6 + (i as f64) * 3.7).collect();
        let bytes = sz().compress_pwr(&data, dims, 1e-3).unwrap();
        let (dec, _) = sz().decompress::<f64>(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            assert!(((a - b) / a).abs() <= 1e-3);
        }
    }
}
