//! Adaptive quantization-interval estimation (SZ 1.4's
//! `optQuantizationIntervals`).
//!
//! SZ picks the number of linear-scaling quantization bins by sampling the
//! prediction-error distribution: enough bins that almost every error
//! quantizes (escaped points cost a verbatim float), but no more — an
//! oversized alphabet wastes Huffman table space and cache. We sample up
//! to ~10k points, predict each from its *original* neighbours (a cheap
//! stand-in for the decompressed neighbours used in the real pass), and
//! size the bin count to cover the 99.5th percentile of `|q|`.

use crate::lorenzo;
use pwrel_data::{Dims, Float};

/// Samples the prediction-error distribution and returns a capacity
/// (power of two, in `[min_capacity, max_capacity]`) that quantizes
/// ≈99.5% of points.
pub fn estimate_capacity<F: Float>(
    data: &[F],
    dims: Dims,
    bound: f64,
    min_capacity: u32,
    max_capacity: u32,
) -> u32 {
    assert!(bound > 0.0 && bound.is_finite());
    assert!(min_capacity.is_power_of_two() && max_capacity.is_power_of_two());
    assert!(min_capacity >= 4 && min_capacity <= max_capacity);
    if data.is_empty() {
        return min_capacity;
    }

    let stride = (data.len() / 10_000).max(1);
    let mut qs: Vec<u64> = Vec::with_capacity(data.len() / stride + 1);
    let mut count = 0usize;
    'outer: for k in 0..dims.nz {
        for j in 0..dims.ny {
            for i in 0..dims.nx {
                count += 1;
                if !count.is_multiple_of(stride) {
                    continue;
                }
                let idx = dims.index(i, j, k);
                let x = data[idx];
                if !x.is_finite() {
                    continue;
                }
                // Predict from original neighbours (sampling approximation).
                let pred = lorenzo::predict(data, dims, i, j, k);
                let q = ((x.to_f64() - pred).abs() / (2.0 * bound)).round();
                if q.is_finite() {
                    qs.push(q.min(1e18) as u64);
                }
                if qs.len() >= 20_000 {
                    break 'outer;
                }
            }
        }
    }
    if qs.is_empty() {
        return min_capacity;
    }
    qs.sort_unstable();
    let p995 = qs[(qs.len() - 1) * 995 / 1000];
    // Need codes for q in [-p995, p995] plus the escape code 0:
    // capacity/2 - 1 >= p995.
    let needed = 2 * (p995 + 2);
    let mut cap = min_capacity;
    while (cap as u64) < needed && cap < max_capacity {
        cap *= 2;
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SzCompressor;
    use pwrel_data::grf;

    #[test]
    fn smooth_data_loose_bound_needs_few_bins() {
        let dims = Dims::d2(128, 128);
        let data = grf::gaussian_field(dims, 3, 4, 3);
        let cap = estimate_capacity(&data, dims, 1e-1, 256, 65536);
        assert_eq!(cap, 256, "smooth data at a loose bound fits the minimum");
    }

    #[test]
    fn tight_bound_needs_more_bins() {
        let dims = Dims::d1(20_000);
        let data = grf::white_noise(dims.len(), 4);
        let loose = estimate_capacity(&data, dims, 1e-1, 256, 65536);
        let tight = estimate_capacity(&data, dims, 1e-5, 256, 65536);
        assert!(tight > loose, "tight {tight} !> loose {loose}");
    }

    #[test]
    fn capacity_is_power_of_two_in_range() {
        let dims = Dims::d1(5000);
        let data = grf::white_noise(5000, 5);
        for bound in [1.0, 1e-2, 1e-6] {
            let cap = estimate_capacity(&data, dims, bound, 256, 65536);
            assert!(cap.is_power_of_two());
            assert!((256..=65536).contains(&cap));
        }
    }

    #[test]
    fn adaptive_capacity_compresses_no_worse_at_loose_bounds() {
        // With a loose bound, a 256-bin alphabet beats the 65536 default
        // (smaller Huffman table, shorter codes).
        let dims = Dims::d2(96, 96);
        let data = grf::gaussian_field(dims, 6, 4, 3);
        let bound = 1e-1;
        let cap = estimate_capacity(&data, dims, bound, 256, 65536);
        let adaptive = SzCompressor {
            capacity: cap,
            ..SzCompressor::default()
        };
        let fixed = SzCompressor::default();
        let a = adaptive.compress_abs(&data, dims, bound).unwrap();
        let f = fixed.compress_abs(&data, dims, bound).unwrap();
        assert!(
            a.len() <= f.len() + 16,
            "adaptive {} vs fixed {}",
            a.len(),
            f.len()
        );
        // And the bound still holds.
        let (dec, _) = adaptive.decompress::<f32>(&a).unwrap();
        for (&x, &y) in data.iter().zip(&dec) {
            assert!((x as f64 - y as f64).abs() <= bound);
        }
    }

    #[test]
    fn empty_and_nonfinite_inputs() {
        assert_eq!(
            estimate_capacity::<f32>(&[], Dims::d1(0), 0.1, 256, 65536),
            256
        );
        let data = vec![f32::NAN; 100];
        assert_eq!(
            estimate_capacity(&data, Dims::d1(100), 0.1, 256, 65536),
            256
        );
    }
}
