//! Lorenzo prediction over previously decompressed neighbours.
//!
//! SZ predicts each point from its already-reconstructed causal neighbours:
//! 1 neighbour in 1D, 3 in 2D, 7 in 3D (paper Sec. IV-A, footnote 1).
//! Out-of-grid neighbours read as 0, which makes the first point of every
//! line/plane effectively "predicted by zero" — it is then either quantized
//! against 0 or stored verbatim.

use pwrel_data::{Dims, Float};

/// Predicts point `(i, j, k)` from the decompressed buffer `dec`.
///
/// `dec` must already contain reconstructed values for all causal
/// predecessors in raster order.
// audit:allow-fn(L1,L5): every caller allocates `dec` with `dims.len()`
// elements and passes in-grid (i, j, k); causal neighbours are either
// in-grid (so `dims.index` < len) or clamped to the 0.0 branch. `dims`
// is header-derived (tainted), but the allocation it indexes into was
// sized from the same `dims`, so the bound holds by construction.
#[inline]
pub fn predict<F: Float>(dec: &[F], dims: Dims, i: usize, j: usize, k: usize) -> f64 {
    let at = |ii: isize, jj: isize, kk: isize| -> f64 {
        if ii < 0 || jj < 0 || kk < 0 {
            return 0.0;
        }
        dec[dims.index(ii as usize, jj as usize, kk as usize)].to_f64()
    };
    let (i, j, k) = (i as isize, j as isize, k as isize);
    match dims.rank() {
        1 => at(i - 1, 0, 0),
        2 => at(i - 1, j, 0) + at(i, j - 1, 0) - at(i - 1, j - 1, 0),
        _ => {
            at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
                - at(i - 1, j - 1, k)
                - at(i - 1, j, k - 1)
                - at(i, j - 1, k - 1)
                + at(i - 1, j - 1, k - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_prediction_is_previous_value() {
        let dims = Dims::d1(4);
        let dec = [1.0f32, 2.0, 3.0, 0.0];
        assert_eq!(predict(&dec, dims, 0, 0, 0), 0.0);
        assert_eq!(predict(&dec, dims, 3, 0, 0), 3.0);
    }

    #[test]
    fn d2_prediction_exact_on_planes() {
        // Lorenzo 2D is exact for bilinear data f(i,j) = a + b*i + c*j.
        let dims = Dims::d2(4, 4);
        let mut dec = vec![0.0f64; 16];
        for j in 0..4 {
            for i in 0..4 {
                dec[dims.index(i, j, 0)] = 2.0 + 3.0 * i as f64 - 1.5 * j as f64;
            }
        }
        for j in 1..4 {
            for i in 1..4 {
                let p = predict(&dec, dims, i, j, 0);
                assert!((p - dec[dims.index(i, j, 0)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn d3_prediction_exact_on_trilinear() {
        let dims = Dims::d3(3, 3, 3);
        let mut dec = vec![0.0f64; 27];
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    dec[dims.index(i, j, k)] =
                        1.0 + 2.0 * i as f64 + 0.5 * j as f64 - 3.0 * k as f64;
                }
            }
        }
        for k in 1..3 {
            for j in 1..3 {
                for i in 1..3 {
                    let p = predict(&dec, dims, i, j, k);
                    assert!((p - dec[dims.index(i, j, k)]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn border_neighbours_read_zero() {
        let dims = Dims::d2(2, 2);
        let dec = [5.0f32, 6.0, 7.0, 0.0];
        // (0,0): all neighbours out of grid.
        assert_eq!(predict(&dec, dims, 0, 0, 0), 0.0);
        // (0,1): only the (i, j-1) term is in-grid.
        assert_eq!(predict(&dec, dims, 0, 1, 0), 5.0);
    }
}
