//! Prediction + linear-scaling quantization engine (both SZ modes).

use crate::format::{SzMode, SzStream};
use crate::stages::{HuffmanStage, LinearQuantizer};
use crate::unpred;
use crate::SzCompressor;
use pwrel_bitstream::{BitReader, BitWriter};
use pwrel_data::{CodecError, Dims, Encoder, Float, Quantizer};
use pwrel_kernels::{dispatch, predict, BatchKernel, LogPlan, CHUNK};
use pwrel_trace::{stage, Recorder, Span, StageTimer};
use std::convert::Infallible;

/// Runs the Lorenzo sweep through the runtime-dispatched kernel: the
/// batched row kernels by default, the per-point reference under
/// `PWREL_SWEEP=reference`. This is the single integration point for all
/// four engine loops (code extraction, compress, fused compress,
/// decompress) — each supplies only its per-point sink.
#[inline]
fn run_sweep<F, E, S>(dims: Dims, dec: &mut [F], sink: S) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    match dispatch::sweep_kernel() {
        BatchKernel::Batched => predict::sweep(dims, dec, sink),
        BatchKernel::Reference => predict::sweep_reference(dims, dec, sink),
    }
}

/// Unwraps the compress-side sweeps' `Infallible` error without a panic
/// path (the match on `E` is empty, so this compiles to nothing).
#[inline]
fn infallible(res: Result<(), Infallible>) {
    match res {
        Ok(()) => {}
        Err(e) => match e {},
    }
}

/// Publishes the quantization tallies for one compression sweep: total
/// values, escaped outliers, and their ratio as an observation.
fn record_quant_stats(rec: &dyn Recorder, n: usize, n_unpred: u64) {
    if !rec.is_enabled() {
        return;
    }
    rec.add(stage::C_QUANT_VALUES, n as u64);
    rec.add(stage::C_QUANT_OUTLIERS, n_unpred);
    if n > 0 {
        rec.observe(stage::O_OUTLIER_RATE, n_unpred as f64 / n as f64);
    }
}

/// Default quantization interval count (SZ 1.4's default scale).
pub const DEFAULT_CAPACITY: u32 = 65536;

/// Error-bound specification for one compression run.
#[derive(Debug, Clone, Copy)]
pub enum EbSpec {
    /// One absolute bound for the whole dataset.
    Abs(f64),
    /// SZ_PWR: per-block absolute bound `2^floor(log2(rel * min|x|))`.
    BlockRel {
        /// Point-wise relative bound.
        rel_bound: f64,
        /// Raster-order block length.
        block_len: usize,
    },
}

/// Resolved per-point bounds.
struct Ebs {
    abs: f64,
    block_ebs: Vec<f64>,
    block_len: usize,
}

impl Ebs {
    // audit:allow-fn(L1): `deserialize` validates block_len >= 1 and
    // block_ebs.len() == div_ceil(n, block_len) before an `Ebs` is built,
    // and every caller passes idx < n, so idx / block_len is in range.
    #[inline]
    fn at(&self, idx: usize) -> f64 {
        if self.block_ebs.is_empty() {
            self.abs
        } else {
            self.block_ebs[idx / self.block_len]
        }
    }
}

/// Exponent clamp: f64 can represent 2^-1074 .. 2^1023.
fn clamp_exp(e: f64) -> i32 {
    if !e.is_finite() {
        return -1074;
    }
    (e.floor() as i64).clamp(-1074, 1000) as i32
}

/// Computes the per-block power-of-two bounds for PWR mode.
///
/// Uses the smallest *non-zero* magnitude in the block (blocks of pure
/// zeros get the f64 denormal floor, which forces verbatim storage and so
/// keeps all-zero regions exact; mixed blocks approximate their zeros —
/// SZ 1.4's documented behaviour).
fn block_exponents<F: Float>(data: &[F], rel_bound: f64, block_len: usize) -> Vec<i32> {
    data.chunks(block_len)
        .map(|block| {
            let mut min_mag = f64::INFINITY;
            for &v in block {
                let m = v.to_f64().abs();
                if m > 0.0 && m < min_mag {
                    min_mag = m;
                }
            }
            if min_mag.is_infinite() {
                -1074
            } else {
                clamp_exp((rel_bound * min_mag).log2())
            }
        })
        .collect()
}

/// Runs the prediction + quantization stage only and returns the raw
/// quantization codes (`0` = unpredictable escape, otherwise
/// `radius + q`). For analysis — e.g. validating the paper's Theorem 3
/// (quantization indices barely move across logarithm bases) against the
/// actual coder rather than a model of it.
pub fn quantization_codes<F: Float>(
    data: &[F],
    dims: Dims,
    bound: f64,
    cfg: &SzCompressor,
) -> Vec<u32> {
    assert_eq!(data.len(), dims.len());
    assert!(bound > 0.0 && bound.is_finite());
    let quant = predict::QuantKernel::new(cfg.capacity);
    // Index-addressed (0 = escape) so the wavefront's cross-row visit
    // order lands every code in its raster slot.
    let mut codes = vec![0u32; data.len()];
    let mut dec: Vec<F> = vec![F::zero(); data.len()];
    infallible(run_sweep(dims, &mut dec, |idx, pred| {
        let x = data[idx];
        Ok(match quant.quantize(x, pred, bound) {
            Some((code, val)) => {
                codes[idx] = code;
                val
            }
            None => x,
        })
    }));
    codes
}

/// Escapes recorded during a (possibly wavefront-interleaved) sweep.
///
/// The unpredictable stream is strictly raster-ordered, but the wavefront
/// sweep visits rows interleaved — so each escape's decoder-visible value
/// is derived immediately (via a throwaway scratch writer, using the same
/// [`unpred::write`] the stream format defines, so the two cannot drift)
/// while the actual stream is written afterwards in index order by
/// [`EscapeLog::into_stream`].
struct EscapeLog<F> {
    scratch: BitWriter,
    entries: Vec<(usize, F)>,
}

impl<F: Float> EscapeLog<F> {
    fn new() -> Self {
        Self {
            scratch: BitWriter::new(),
            entries: Vec::new(),
        }
    }

    /// Records one escaping point and returns the value the decoder will
    /// reconstruct for it (the caller's prediction state must see this).
    #[inline]
    fn record(&mut self, idx: usize, x: F, eb: f64) -> F {
        self.entries.push((idx, x));
        unpred::write(&mut self.scratch, x, eb)
    }

    /// Writes the raster-ordered unpredictable stream: entries sorted by
    /// index (the wavefront emits them nearly sorted), re-encoded with the
    /// per-point bound. Returns the writer and the escape count.
    fn into_stream(mut self, eb_at: impl Fn(usize) -> f64) -> (BitWriter, u64) {
        self.entries.sort_unstable_by_key(|&(idx, _)| idx);
        let mut w = BitWriter::new();
        for &(idx, x) in &self.entries {
            unpred::write(&mut w, x, eb_at(idx));
        }
        (w, self.entries.len() as u64)
    }
}

/// One prediction + quantization step: stores the code for `x` at its
/// index (`0` = unpredictable escape) and returns the value the decoder
/// will see. Shared by the buffered and fused compression loops so they
/// stay bit-identical by construction; index-addressed so it tolerates
/// the wavefront's cross-row visit order.
#[inline]
fn quantize_one<F: Float>(
    x: F,
    eb: f64,
    quant: &predict::QuantKernel,
    pred: f64,
    idx: usize,
    codes: &mut [u32],
    escapes: &mut EscapeLog<F>,
) -> F {
    if let Some((code, val)) = quant.quantize(x, pred, eb) {
        codes[idx] = code;
        return val;
    }
    // SZ's binary-representation analysis: keep only the leading bits the
    // (per-point) bound requires; predict from the value the decoder sees.
    // `codes` was zero-initialized, so the escape code is already in place.
    escapes.record(idx, x, eb)
}

/// Core compressor shared by both modes. The recorder attributes the
/// prediction/quantization sweep, the Huffman stage, and (inside
/// serialization) the LZ pass; it never changes the output bytes.
pub(crate) fn compress<F: Float>(
    data: &[F],
    dims: Dims,
    spec: EbSpec,
    cfg: &SzCompressor,
    rec: &dyn Recorder,
) -> Result<Vec<u8>, CodecError> {
    let capacity = cfg.capacity;
    let quant = LinearQuantizer { capacity };
    // Hoisted once per sweep: rebuilding the kernel per point would put a
    // (cheap but pointless) int->float conversion in the hot loop.
    let qk = predict::QuantKernel::new(capacity);

    let (mode, ebs) = match spec {
        EbSpec::Abs(eb) => (
            SzMode::Abs { eb },
            Ebs {
                abs: eb,
                block_ebs: Vec::new(),
                block_len: 1,
            },
        ),
        EbSpec::BlockRel {
            rel_bound,
            block_len,
        } => {
            let exps = block_exponents(data, rel_bound, block_len);
            let block_ebs: Vec<f64> = exps.iter().map(|&e| (e as f64).exp2()).collect();
            (
                SzMode::Pwr {
                    rel_bound,
                    block_len: block_len as u64,
                    block_exps: exps,
                },
                Ebs {
                    abs: 0.0,
                    block_ebs,
                    block_len,
                },
            )
        }
    };

    let n = data.len();
    let mut codes: Vec<u32> = vec![0u32; n];
    let mut escapes = EscapeLog::new();
    let mut dec: Vec<F> = vec![F::zero(); n];

    {
        let _pq = Span::enter(rec, stage::PREDICT_QUANTIZE);
        infallible(run_sweep(dims, &mut dec, |idx, pred| {
            Ok(quantize_one(
                data[idx],
                ebs.at(idx),
                &qk,
                pred,
                idx,
                &mut codes,
                &mut escapes,
            ))
        }));
    }
    let (unpred_w, n_unpred) = escapes.into_stream(|idx| ebs.at(idx));
    record_quant_stats(rec, n, n_unpred);

    let codes_buf = {
        let _huff = Span::enter(rec, stage::HUFFMAN);
        HuffmanStage.encode(&codes, Quantizer::<F>::alphabet(&quant))
    };
    let stream = SzStream {
        float_bits: F::BITS as u8,
        dims,
        capacity,
        mode,
        codes_buf,
        n_unpred,
        unpred_bytes: unpred_w.into_bytes(),
    };
    Ok(stream.serialize_traced(cfg.lossless_pass, rec))
}

/// Fused transform + compression: maps `data` through `plan` in
/// [`CHUNK`]-sized runs of a stack window while the Lorenzo + quantization
/// sweep consumes them, collecting the sign bitmap in the same pass. No
/// intermediate mapped vector is ever materialized. The raster loop visits
/// `dims.index(i, j, k)` contiguously, which is what lets the window
/// follow a simple linear cursor.
///
/// Produces exactly the stream [`compress`] would on the buffered mapped
/// data with `EbSpec::Abs(plan.abs_bound)`.
///
/// The recorder attributes the chunked mapping to [`stage::TRANSFORM`]
/// (as a [`StageTimer`] aggregate, since it interleaves with the sweep)
/// and the surrounding sweep to [`stage::PREDICT_QUANTIZE`]; the
/// predict/quantize span therefore *contains* the transform total.
pub(crate) fn compress_fused<F: Float>(
    data: &[F],
    dims: Dims,
    plan: &LogPlan,
    cfg: &SzCompressor,
    rec: &dyn Recorder,
) -> Result<(Vec<u8>, Option<Vec<bool>>), CodecError> {
    let capacity = cfg.capacity;
    let quant = LinearQuantizer { capacity };
    let qk = predict::QuantKernel::new(capacity);
    let eb = plan.abs_bound;

    let n = data.len();
    let mut codes: Vec<u32> = vec![0u32; n];
    let mut escapes = EscapeLog::new();
    let mut dec: Vec<F> = vec![F::zero(); n];
    // Mapped-value ring: chunks are mapped on demand when the sweep first
    // touches them (same CHUNK-aligned boundaries as a raster cursor, so
    // mapped values and the sign bitmap are byte-identical). The wavefront
    // keeps up to LANES rows in flight, so the live mapped span never
    // exceeds LANES·nx + CHUNK; a power-of-two capacity above that keeps
    // the ring index a mask and no live slot is ever overwritten.
    let span = if dims.rank() == 1 {
        2 * CHUNK
    } else {
        predict::LANES * dims.nx + 2 * CHUNK
    };
    let cap = span.next_power_of_two();
    let mut window = vec![F::default(); cap];
    let mut scratch = [0f64; CHUNK];
    let mut signs: Vec<bool> = Vec::with_capacity(if plan.any_negative { n } else { 0 });
    let mut mapped_end = 0usize;

    {
        let _pq = Span::enter(rec, stage::PREDICT_QUANTIZE);
        let mut map_timer = StageTimer::new(rec, stage::TRANSFORM);
        infallible(run_sweep(dims, &mut dec, |idx, pred| {
            while idx >= mapped_end {
                let end = (mapped_end + CHUNK).min(n);
                let slot = mapped_end & (cap - 1);
                map_timer.time(|| {
                    plan.map_chunk(
                        &data[mapped_end..end],
                        &mut window[slot..slot + (end - mapped_end)],
                        &mut scratch,
                        &mut signs,
                    )
                });
                mapped_end = end;
            }
            Ok(quantize_one(
                window[idx & (cap - 1)],
                eb,
                &qk,
                pred,
                idx,
                &mut codes,
                &mut escapes,
            ))
        }));
        map_timer.finish();
    }
    let (unpred_w, n_unpred) = escapes.into_stream(|_| eb);
    record_quant_stats(rec, n, n_unpred);

    let codes_buf = {
        let _huff = Span::enter(rec, stage::HUFFMAN);
        HuffmanStage.encode(&codes, Quantizer::<F>::alphabet(&quant))
    };
    let stream = SzStream {
        float_bits: F::BITS as u8,
        dims,
        capacity,
        mode: SzMode::Abs { eb },
        codes_buf,
        n_unpred,
        unpred_bytes: unpred_w.into_bytes(),
    };
    Ok((
        stream.serialize_traced(cfg.lossless_pass, rec),
        plan.any_negative.then_some(signs),
    ))
}

/// Publishes the interleaved-entropy descriptor for one Huffman payload:
/// how many sub-streams it carries and how their bytes balance (lane
/// imbalance bounds the pooled-decode speedup an operator can expect).
/// Legacy single-stream payloads record nothing.
fn record_entropy_lanes(rec: &dyn Recorder, buf: &[u8]) {
    if !rec.is_enabled() {
        return;
    }
    if let Some(lens) = pwrel_lossless::huffman::lane_lengths(buf) {
        rec.add(stage::C_ENTROPY_INTERLEAVED, 1);
        rec.add(stage::C_ENTROPY_SUBSTREAMS, lens.len() as u64);
        for &len in &lens {
            rec.observe(stage::O_ENTROPY_LANE_BYTES, len as f64);
        }
    }
}

/// Decompresses any mode. The recorder attributes the LZ unwrap (inside
/// deserialization), the Huffman decode, and the reconstruction sweep.
pub(crate) fn decompress<F: Float>(
    bytes: &[u8],
    rec: &dyn Recorder,
) -> Result<(Vec<F>, Dims), CodecError> {
    decompress_pooled(bytes, rec, &pwrel_data::SerialLanes)
}

/// [`decompress`] with entropy sub-stream fan-out: interleaved Huffman
/// payloads decode their lanes through `exec`. Must not be called from
/// inside a worker-pool task when `exec` is the pool itself (see
/// `HuffmanStage::decode_pooled`).
pub(crate) fn decompress_pooled<F: Float>(
    bytes: &[u8],
    rec: &dyn Recorder,
    exec: &dyn pwrel_data::LaneExecutor,
) -> Result<(Vec<F>, Dims), CodecError> {
    let stream = SzStream::deserialize_traced(bytes, rec)?;
    if stream.float_bits as u32 != F::BITS {
        return Err(CodecError::Mismatch("element type differs from stream"));
    }
    if matches!(stream.mode, SzMode::AbsHybrid { .. }) {
        return crate::hybrid::decompress(&stream);
    }
    if matches!(stream.mode, SzMode::PwrSpatial { .. }) {
        return crate::pwr_spatial::decompress(&stream);
    }
    let dims = stream.dims;
    let n = dims.len();
    let quant = LinearQuantizer {
        capacity: stream.capacity,
    };

    let ebs = match &stream.mode {
        SzMode::Abs { eb } => Ebs {
            abs: *eb,
            block_ebs: Vec::new(),
            block_len: 1,
        },
        SzMode::Pwr {
            block_len,
            block_exps,
            ..
        } => Ebs {
            abs: 0.0,
            block_ebs: block_exps.iter().map(|&e| (e as f64).exp2()).collect(),
            block_len: *block_len as usize,
        },
        // Routed to dedicated decoders above; a structured error instead
        // of `unreachable!` keeps the decode path panic-free (lint L1)
        // even if the routing ever regresses.
        SzMode::AbsHybrid { .. } | SzMode::PwrSpatial { .. } => {
            return Err(CodecError::Corrupt("mode not routed to its decoder"))
        }
    };

    let mut pos = 0usize;
    let codes = {
        let _huff = Span::enter(rec, stage::HUFFMAN);
        record_entropy_lanes(rec, &stream.codes_buf);
        HuffmanStage.decode_pooled(&stream.codes_buf, &mut pos, exec)?
    };
    if codes.len() != n {
        return Err(CodecError::Corrupt("code count != point count"));
    }

    let mut dec: Vec<F> = vec![F::zero(); n];

    let _rebuild = Span::enter(rec, stage::RECONSTRUCT);
    // The unpredictable stream is raster-ordered but the wavefront sweep
    // visits rows interleaved, so escapes are decoded up front (in stream
    // order, reading exactly the bits the encoder wrote) and looked up by
    // index during the sweep.
    let mut unpred_r = BitReader::new(&stream.unpred_bytes);
    let mut esc_pos: Vec<usize> = Vec::new();
    let mut esc_val: Vec<F> = Vec::new();
    for (idx, &code) in codes.iter().enumerate() {
        if code == 0 {
            esc_pos.push(idx);
            esc_val.push(unpred::read::<F>(&mut unpred_r, ebs.at(idx))?);
        }
    }

    // audit:allow-fn(L1): `codes.len() == n` is checked above and `dec` is
    // allocated with n elements; the sweep hands the sink idx < n only,
    // so the hot-loop indexing cannot go out of bounds.
    run_sweep(dims, &mut dec, |idx, pred| {
        let code = codes[idx];
        if code == 0 {
            // `esc_pos` holds every zero-code index in ascending order, so
            // the search can only miss if the sweep revisits an index —
            // surface that as corruption rather than panicking.
            match esc_pos.binary_search(&idx) {
                Ok(r) => Ok(esc_val[r]),
                Err(_) => Err(CodecError::Corrupt("escape index missing")),
            }
        } else {
            quant.reconstruct(code, pred, ebs.at(idx))
        }
    })?;
    Ok((dec, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::grf;

    fn sz() -> SzCompressor {
        SzCompressor::default()
    }

    fn check_abs<F: Float>(data: &[F], dims: Dims, eb: f64, cfg: &SzCompressor) -> Vec<u8> {
        let bytes = cfg.compress_abs(data, dims, eb).unwrap();
        let (dec, d2) = cfg.decompress::<F>(&bytes).unwrap();
        assert_eq!(d2, dims);
        assert_eq!(dec.len(), data.len());
        for (idx, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            let err = (a.to_f64() - b.to_f64()).abs();
            assert!(err <= eb, "idx {idx}: |{a} - {b}| = {err} > {eb}");
        }
        bytes
    }

    #[test]
    fn abs_bound_holds_1d_smooth() {
        let dims = Dims::d1(10_000);
        let data: Vec<f32> = (0..10_000)
            .map(|i| (i as f32 * 0.01).sin() * 100.0)
            .collect();
        for eb in [1.0, 0.1, 1e-3] {
            check_abs(&data, dims, eb, &sz());
        }
    }

    #[test]
    fn abs_bound_holds_2d_field() {
        let dims = Dims::d2(64, 64);
        let data = grf::gaussian_field(dims, 11, 2, 2);
        check_abs(&data, dims, 1e-3, &sz());
    }

    #[test]
    fn abs_bound_holds_3d_field() {
        let dims = Dims::d3(16, 16, 16);
        let data = grf::gaussian_field(dims, 12, 1, 2);
        check_abs(&data, dims, 1e-4, &sz());
    }

    #[test]
    fn smooth_data_compresses_well() {
        let dims = Dims::d2(128, 128);
        let data = grf::gaussian_field(dims, 13, 4, 3);
        let bytes = check_abs(&data, dims, 1e-2, &sz());
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 8.0, "cr = {cr}");
    }

    #[test]
    fn white_noise_still_bounded() {
        let dims = Dims::d1(5000);
        let data = grf::white_noise(5000, 3);
        check_abs(&data, dims, 1e-3, &sz());
    }

    #[test]
    fn f64_path_bounded() {
        let dims = Dims::d1(2000);
        let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.02).cos() * 1e6).collect();
        check_abs(&data, dims, 1e-2, &sz());
    }

    #[test]
    fn nonfinite_values_survive_exactly() {
        let dims = Dims::d1(6);
        let data = vec![
            1.0f32,
            f32::NAN,
            2.0,
            f32::INFINITY,
            -3.0,
            f32::NEG_INFINITY,
        ];
        let bytes = sz().compress_abs(&data, dims, 0.1).unwrap();
        let (dec, _) = sz().decompress::<f32>(&bytes).unwrap();
        assert!(dec[1].is_nan());
        assert_eq!(dec[3], f32::INFINITY);
        assert_eq!(dec[5], f32::NEG_INFINITY);
        assert!((dec[0] - 1.0).abs() <= 0.1);
    }

    #[test]
    fn empty_input_round_trips() {
        let dims = Dims::d1(0);
        let bytes = sz().compress_abs::<f32>(&[], dims, 0.1).unwrap();
        let (dec, _) = sz().decompress::<f32>(&bytes).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn pwr_bound_holds_on_positive_data() {
        let dims = Dims::d1(8192);
        let data: Vec<f32> = (0..8192)
            .map(|i| ((i as f32 * 0.01).sin() * 0.5 + 1.0) * 10f32.powi(i / 2048))
            .collect();
        for br in [1e-1, 1e-2, 1e-3] {
            let bytes = sz().compress_pwr(&data, dims, br).unwrap();
            let (dec, _) = sz().decompress::<f32>(&bytes).unwrap();
            for (idx, (&a, &b)) in data.iter().zip(&dec).enumerate() {
                let rel = ((a - b) / a).abs();
                assert!(rel as f64 <= br, "idx {idx}: rel {rel} > {br}");
            }
        }
    }

    #[test]
    fn pwr_all_zero_blocks_stay_exact() {
        let dims = Dims::d1(1024);
        let mut data = vec![0.0f32; 1024];
        // One nonzero block in the middle; surrounding blocks are pure zero.
        for (off, v) in data[512..768].iter_mut().enumerate() {
            *v = 1.0 + off as f32 * 0.001;
        }
        let bytes = sz().compress_pwr(&data, dims, 1e-2).unwrap();
        let (dec, _) = sz().decompress::<f32>(&bytes).unwrap();
        for (idx, &v) in dec.iter().take(512).enumerate() {
            assert_eq!(v, 0.0, "idx {idx}: leading zero block must be exact");
        }
    }

    #[test]
    fn pwr_struggles_on_spiky_blocks() {
        // A block whose min is 1e-6 while neighbours are ~1e3 forces a tiny
        // absolute bound for the whole block — the weakness the paper
        // exploits. Verify the bound still *holds* (correctness), and that
        // the spiky stream is larger than a smooth one (behaviour).
        let dims = Dims::d1(4096);
        let smooth: Vec<f32> = (0..4096)
            .map(|i| 1000.0 + (i as f32 * 0.01).sin())
            .collect();
        let mut spiky = smooth.clone();
        for b in 0..(4096 / 256) {
            spiky[b * 256 + 7] = 1e-6;
        }
        let cfg = sz();
        let s1 = cfg.compress_pwr(&smooth, dims, 1e-2).unwrap();
        let s2 = cfg.compress_pwr(&spiky, dims, 1e-2).unwrap();
        let (dec, _) = cfg.decompress::<f32>(&s2).unwrap();
        for (&a, &b) in spiky.iter().zip(&dec) {
            assert!(((a - b) / a).abs() <= 1e-2);
        }
        assert!(
            s2.len() > s1.len() * 2,
            "spiky {} vs smooth {}",
            s2.len(),
            s1.len()
        );
    }

    #[test]
    fn invalid_arguments_rejected() {
        let dims = Dims::d1(4);
        let data = [1.0f32; 4];
        assert!(sz().compress_abs(&data, dims, 0.0).is_err());
        assert!(sz().compress_abs(&data, dims, f64::NAN).is_err());
        assert!(sz().compress_abs(&data, Dims::d1(5), 0.1).is_err());
        assert!(sz().compress_pwr(&data, dims, -0.5).is_err());
        let bad_cfg = SzCompressor {
            capacity: 3,
            ..sz()
        };
        assert!(bad_cfg.compress_abs(&data, dims, 0.1).is_err());
    }

    #[test]
    fn wrong_element_type_rejected() {
        let dims = Dims::d1(16);
        let data = [1.5f32; 16];
        let bytes = sz().compress_abs(&data, dims, 0.1).unwrap();
        assert!(sz().decompress::<f64>(&bytes).is_err());
    }

    #[test]
    fn small_capacity_still_bounded() {
        let cfg = SzCompressor {
            capacity: 8,
            ..sz()
        };
        let dims = Dims::d1(1000);
        let data = grf::white_noise(1000, 5);
        check_abs(&data, dims, 1e-3, &cfg);
    }

    #[test]
    fn tighter_bound_means_larger_stream() {
        let dims = Dims::d2(64, 64);
        let data = grf::gaussian_field(dims, 21, 3, 3);
        let cfg = sz();
        let loose = cfg.compress_abs(&data, dims, 1e-1).unwrap();
        let tight = cfg.compress_abs(&data, dims, 1e-4).unwrap();
        assert!(tight.len() > loose.len());
    }
}
