//! The SZ pipeline expressed as composable stages.
//!
//! SZ's monolithic loop is really four stages — Lorenzo prediction,
//! linear-scaling quantization, Huffman coding, and the optional LZ
//! pass — and this module names each one as a concrete type implementing
//! the `pwrel-data` stage traits. The engine dispatches them statically,
//! so the stage boundary costs nothing at runtime; what it buys is that
//! hybrid pipelines (regression predictor, alternative entropy coders)
//! swap one stage instead of forking the loop.

use crate::lorenzo;
use pwrel_core::cast;
use pwrel_data::{CodecError, Dims, Encoder, Float, LosslessStage, Predictor, Quantizer};
use pwrel_lossless::{huffman, lz};

/// The 1/3/7-neighbour Lorenzo predictor (paper Sec. IV-A).
#[derive(Debug, Clone, Copy, Default)]
pub struct LorenzoPredictor;

impl<F: Float> Predictor<F> for LorenzoPredictor {
    fn name(&self) -> &'static str {
        "lorenzo"
    }

    #[inline]
    fn predict(&self, dec: &[F], dims: Dims, i: usize, j: usize, k: usize) -> f64 {
        lorenzo::predict(dec, dims, i, j, k)
    }
}

/// SZ 1.4's linear-scaling quantizer: residuals bin into `capacity`
/// intervals of width `2·eb` centred on the radius, code 0 escapes to the
/// unpredictable store.
#[derive(Debug, Clone, Copy)]
pub struct LinearQuantizer {
    /// Quantization interval count (even, ≥ 4).
    pub capacity: u32,
}

impl LinearQuantizer {
    #[inline]
    fn radius(&self) -> i64 {
        i64::from(self.capacity / 2)
    }
}

impl<F: Float> Quantizer<F> for LinearQuantizer {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn alphabet(&self) -> usize {
        cast::usize_from_u32(self.capacity)
    }

    #[inline]
    fn quantize(&self, x: F, pred: f64, eb: f64) -> Option<(u32, F)> {
        // The arithmetic lives in `pwrel-kernels` so the sweep sinks and
        // this trait impl share one implementation and cannot drift.
        pwrel_kernels::predict::QuantKernel::new(self.capacity).quantize(x, pred, eb)
    }

    #[inline]
    fn reconstruct(&self, code: u32, pred: f64, eb: f64) -> Result<F, CodecError> {
        if code >= self.capacity {
            return Err(CodecError::Corrupt("quantization code out of range"));
        }
        let q = i64::from(code) - self.radius();
        Ok(F::from_f64(pred + 2.0 * eb * cast::f64_from_quant(q)))
    }
}

/// Canonical Huffman coding of the quantization codes.
#[derive(Debug, Clone, Copy, Default)]
pub struct HuffmanStage;

impl HuffmanStage {
    /// [`Encoder::decode`] with sub-stream fan-out: interleaved payloads
    /// decode their four lanes through `exec` (a [`pwrel_data::LaneExecutor`],
    /// e.g. the worker pool); legacy single-stream payloads are unaffected.
    ///
    /// Callers must uphold the executor's threading contract — with the
    /// worker pool as `exec`, this must not run *inside* a pool task.
    pub fn decode_pooled(
        &self,
        bytes: &[u8],
        pos: &mut usize,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<Vec<u32>, CodecError> {
        Ok(huffman::decode_symbols_pooled(bytes, pos, exec)?)
    }
}

impl Encoder for HuffmanStage {
    fn name(&self) -> &'static str {
        "huffman"
    }

    fn encode(&self, codes: &[u32], alphabet: usize) -> Vec<u8> {
        huffman::encode_symbols(codes, alphabet)
    }

    fn decode(&self, bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, CodecError> {
        Ok(huffman::decode_symbols(bytes, pos)?)
    }
}

/// The optional byte-level LZ pass (SZ's gzip stage stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct LzStage;

impl LosslessStage for LzStage {
    fn name(&self) -> &'static str {
        "lz"
    }

    fn compress(&self, bytes: &[u8]) -> Vec<u8> {
        lz::compress(bytes)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(lz::decompress(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizer_round_trips_through_reconstruct() {
        let q = LinearQuantizer { capacity: 1024 };
        let (code, val) = Quantizer::<f32>::quantize(&q, 3.07f32, 3.0, 0.05).unwrap();
        let back: f32 = q.reconstruct(code, 3.0, 0.05).unwrap();
        assert_eq!(val, back);
        assert!((back - 3.07).abs() <= 0.05);
    }

    #[test]
    fn quantizer_escapes_nonfinite_and_out_of_radius() {
        let q = LinearQuantizer { capacity: 8 };
        assert!(Quantizer::<f32>::quantize(&q, f32::NAN, 0.0, 0.1).is_none());
        assert!(Quantizer::<f32>::quantize(&q, 1e9f32, 0.0, 0.1).is_none());
    }

    #[test]
    fn reconstruct_rejects_out_of_alphabet_codes() {
        let q = LinearQuantizer { capacity: 8 };
        assert!(Quantizer::<f32>::reconstruct(&q, 8, 0.0, 0.1).is_err());
        assert!(Quantizer::<f32>::reconstruct(&q, 7, 0.0, 0.1).is_ok());
    }

    #[test]
    fn encoder_and_lossless_stages_round_trip() {
        let codes: Vec<u32> = (0..500).map(|i| i % 7).collect();
        let buf = HuffmanStage.encode(&codes, 16);
        let mut pos = 0;
        assert_eq!(HuffmanStage.decode(&buf, &mut pos).unwrap(), codes);

        let bytes: Vec<u8> = (0..400).map(|i| (i % 9) as u8).collect();
        let packed = LzStage.compress(&bytes);
        assert_eq!(LzStage.decompress(&packed).unwrap(), bytes);
    }
}
