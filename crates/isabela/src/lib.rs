#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately treats NaN as invalid; clippy prefers
// partial_cmp, which would hide that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

//! ISABELA-like sort-and-spline lossy compressor.
//!
//! Reproduces the design of ISABELA (In-situ Sort-And-B-spline Error-bounded
//! Lossy Abatement), the oldest point-wise-relative baseline in the paper:
//!
//! 1. the stream is cut into fixed **windows** (default 1024 values),
//! 2. each window is **sorted**, converting arbitrary data into a smooth
//!    monotone curve — at the cost of storing the full sorting permutation
//!    (`log2 W` bits *per value*: the index overhead that caps ISABELA's
//!    compression ratio at ~2, and the sort dominates its runtime — both
//!    effects the paper's Figures 2–3 show),
//! 3. the monotone curve is approximated by a **spline** through a few
//!    dozen knots,
//! 4. per-point **corrections** pull the approximation inside the
//!    point-wise relative bound: a multiplicative quantization code per
//!    value, with a verbatim escape for points the code cannot fix.
//!
//! Unlike the original (which the paper marks `≈100%` bounded), the escape
//! path makes this implementation *strictly* bounded — noted in
//! EXPERIMENTS.md where the comparison is recorded.

use pwrel_bitstream::{bytesio, varint, BitReader, BitWriter};
use pwrel_data::{CodecError, Dims, Float};
use pwrel_lossless::huffman;

const MAGIC: &[u8; 4] = b"ISB1";
/// Correction codes span [-CMAX, CMAX]; symbol 0 is the escape.
const CMAX: i64 = 255;
const N_SYMBOLS: usize = 2 * CMAX as usize + 2;

/// ISABELA-like codec configuration.
#[derive(Debug, Clone, Copy)]
pub struct IsabelaCompressor {
    /// Values per sorting window.
    pub window: usize,
    /// Spline knots per full window.
    pub knots: usize,
}

impl Default for IsabelaCompressor {
    fn default() -> Self {
        Self {
            window: 1024,
            knots: 32,
        }
    }
}

/// Evenly spaced knot positions (first and last always included).
fn knot_positions(wlen: usize, knots: usize) -> Vec<usize> {
    if wlen == 1 {
        return vec![0];
    }
    let nk = knots.clamp(2, wlen);
    (0..nk).map(|t| (t * (wlen - 1)) / (nk - 1)).collect()
}

/// Linear interpolation of the sorted curve through its knot samples.
fn approx_from_knots(positions: &[usize], values: &[f64], wlen: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; wlen];
    if positions.len() == 1 {
        out[0] = values[0];
        return out;
    }
    for seg in 0..positions.len() - 1 {
        let (p0, p1) = (positions[seg], positions[seg + 1]);
        let (v0, v1) = (values[seg], values[seg + 1]);
        if p1 == p0 {
            out[p0] = v0;
            continue;
        }
        for (off, o) in out[p0..=p1].iter_mut().enumerate() {
            let t = off as f64 / (p1 - p0) as f64;
            *o = v0 + t * (v1 - v0);
        }
    }
    out
}

/// Bits needed to index a window of length `wlen`.
fn perm_bits(wlen: usize) -> u32 {
    if wlen <= 1 {
        0
    } else {
        usize::BITS - (wlen - 1).leading_zeros()
    }
}

impl IsabelaCompressor {
    fn check(&self) -> Result<(), CodecError> {
        if self.window == 0 {
            return Err(CodecError::InvalidArgument("window must be > 0"));
        }
        if self.knots < 2 {
            return Err(CodecError::InvalidArgument("need at least 2 knots"));
        }
        Ok(())
    }

    /// Compresses with a point-wise relative error bound:
    /// `|x - x'| <= rel_bound * |x|` for every point (zeros stay exact).
    pub fn compress_rel<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rel_bound: f64,
    ) -> Result<Vec<u8>, CodecError> {
        self.check()?;
        if !(rel_bound > 0.0) || !rel_bound.is_finite() {
            return Err(CodecError::InvalidArgument(
                "rel_bound must be finite and > 0",
            ));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }

        let n = data.len();
        let log_step = (1.0 + rel_bound).ln();
        let mut perm_stream = BitWriter::with_capacity(n * 2);
        let mut knot_bytes: Vec<u8> = Vec::new();
        let mut symbols: Vec<u32> = Vec::with_capacity(n);
        let mut escapes: Vec<u8> = Vec::new();
        let elem = F::BITS as usize / 8;

        let mut start = 0usize;
        while start < n {
            let wlen = self.window.min(n - start);
            let win = &data[start..start + wlen];

            // Sort indices by value (total order so NaNs are stable).
            let mut order: Vec<u32> = (0..wlen as u32).collect();
            order.sort_by(|&a, &b| {
                win[a as usize]
                    .to_f64()
                    .total_cmp(&win[b as usize].to_f64())
            });

            let bits = perm_bits(wlen);
            for &o in &order {
                perm_stream.write_bits(o as u64, bits);
            }

            let sorted: Vec<f64> = order.iter().map(|&o| win[o as usize].to_f64()).collect();
            let positions = knot_positions(wlen, self.knots);
            for &p in &positions {
                let v = F::from_f64(sorted[p]);
                knot_bytes.extend_from_slice(&v.to_bits_u64().to_le_bytes()[..elem]);
            }
            // Knots are stored as F, so approximate from the rounded values
            // the decoder will actually see.
            let knot_vals: Vec<f64> = positions
                .iter()
                .map(|&p| F::from_f64(sorted[p]).to_f64())
                .collect();
            let approx = approx_from_knots(&positions, &knot_vals, wlen);

            for (s, (&v, &a)) in sorted.iter().zip(&approx).enumerate() {
                let _ = s;
                let orig = v;
                let mut coded = false;
                if orig.is_finite()
                    && orig != 0.0
                    && a.is_finite()
                    && a != 0.0
                    && (orig > 0.0) == (a > 0.0)
                {
                    let c = ((orig / a).ln() / log_step).round();
                    if c.is_finite() && c.abs() <= CMAX as f64 {
                        let rec = F::from_f64(a * (c * log_step).exp()).to_f64();
                        if (rec - orig).abs() <= rel_bound * orig.abs() {
                            symbols.push((c as i64 + CMAX + 1) as u32);
                            coded = true;
                        }
                    }
                }
                if !coded {
                    symbols.push(0); // escape: verbatim value follows
                    let bits_v = F::from_f64(orig).to_bits_u64();
                    escapes.extend_from_slice(&bits_v.to_le_bytes()[..elem]);
                }
            }
            start += wlen;
        }

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(F::BITS as u8);
        let (rank, nx, ny, nz) = dims.to_header();
        out.push(rank);
        varint::write_uvarint(&mut out, nx);
        varint::write_uvarint(&mut out, ny);
        varint::write_uvarint(&mut out, nz);
        bytesio::put_f64(&mut out, rel_bound);
        varint::write_uvarint(&mut out, self.window as u64);
        varint::write_uvarint(&mut out, self.knots as u64);
        for (label, buf) in [("perm", perm_stream.into_bytes()), ("knots", knot_bytes)] {
            let _ = label;
            varint::write_uvarint(&mut out, buf.len() as u64);
            out.extend_from_slice(&buf);
        }
        let sym_buf = huffman::encode_symbols(&symbols, N_SYMBOLS);
        varint::write_uvarint(&mut out, sym_buf.len() as u64);
        out.extend_from_slice(&sym_buf);
        varint::write_uvarint(&mut out, (escapes.len() / elem) as u64);
        out.extend_from_slice(&escapes);
        Ok(out)
    }

    /// Decompresses a stream produced by [`IsabelaCompressor::compress_rel`].
    pub fn decompress<F: Float>(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        decompress::<F>(bytes)
    }
}

/// Decompresses without the original configuration (it is in the header).
pub fn decompress<F: Float>(bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
    if bytes.len() < 7 || &bytes[..4] != MAGIC {
        return Err(CodecError::Mismatch("bad ISABELA magic"));
    }
    let mut pos = 4usize;
    let float_bits = bytes[pos];
    pos += 1;
    if float_bits as u32 != F::BITS {
        return Err(CodecError::Mismatch("element type differs from stream"));
    }
    let rank = bytes[pos];
    pos += 1;
    let nx = varint::read_uvarint(bytes, &mut pos)?;
    let ny = varint::read_uvarint(bytes, &mut pos)?;
    let nz = varint::read_uvarint(bytes, &mut pos)?;
    let dims = Dims::from_header(rank, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims"))?;
    let rel_bound = bytesio::get_f64(bytes, &mut pos)?;
    if !(rel_bound > 0.0) || !rel_bound.is_finite() {
        return Err(CodecError::Corrupt("bad rel bound"));
    }
    let window = varint::read_uvarint(bytes, &mut pos)? as usize;
    let knots = varint::read_uvarint(bytes, &mut pos)? as usize;
    if window == 0 || knots < 2 {
        return Err(CodecError::Corrupt("bad window/knots"));
    }

    let perm_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let perm_buf = bytesio::get_bytes(bytes, &mut pos, perm_len)?;
    let knots_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let knot_buf = bytesio::get_bytes(bytes, &mut pos, knots_len)?;
    let sym_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let sym_end = pos.checked_add(sym_len).ok_or(CodecError::Corrupt("eof"))?;
    if sym_end > bytes.len() {
        return Err(CodecError::Corrupt("truncated symbols"));
    }
    let mut spos = pos;
    let symbols = huffman::decode_symbols(bytes, &mut spos)?;
    pos = sym_end;
    let elem = F::BITS as usize / 8;
    let n_escapes = varint::read_uvarint(bytes, &mut pos)? as usize;
    let escape_buf = bytesio::get_bytes(bytes, &mut pos, n_escapes * elem)?;

    let n = dims.len();
    if symbols.len() != n {
        return Err(CodecError::Corrupt("symbol count != point count"));
    }
    let log_step = (1.0 + rel_bound).ln();
    let mut perm = BitReader::new(perm_buf);
    let mut knot_pos = 0usize;
    let mut escape_iter = escape_buf.chunks_exact(elem);
    let mut out = vec![F::zero(); n];
    let mut sym_idx = 0usize;

    let mut start = 0usize;
    while start < n {
        let wlen = window.min(n - start);
        let bits = perm_bits(wlen);
        let mut order = Vec::with_capacity(wlen);
        for _ in 0..wlen {
            let o = perm.read_bits(bits)? as usize;
            if o >= wlen {
                return Err(CodecError::Corrupt("permutation index out of range"));
            }
            order.push(o);
        }
        let positions = knot_positions(wlen, knots);
        let mut knot_vals = Vec::with_capacity(positions.len());
        for _ in 0..positions.len() {
            if knot_pos + elem > knot_buf.len() {
                return Err(CodecError::Corrupt("truncated knots"));
            }
            let mut raw = [0u8; 8];
            raw[..elem].copy_from_slice(&knot_buf[knot_pos..knot_pos + elem]);
            knot_pos += elem;
            knot_vals.push(F::from_bits_u64(u64::from_le_bytes(raw)).to_f64());
        }
        let approx = approx_from_knots(&positions, &knot_vals, wlen);

        for (s, &a) in approx.iter().enumerate() {
            let sym = symbols[sym_idx];
            sym_idx += 1;
            let v = if sym == 0 {
                let chunk = escape_iter
                    .next()
                    .ok_or(CodecError::Corrupt("missing escape value"))?;
                let mut raw = [0u8; 8];
                raw[..elem].copy_from_slice(chunk);
                F::from_bits_u64(u64::from_le_bytes(raw))
            } else {
                let c = sym as i64 - (CMAX + 1);
                F::from_f64(a * (c as f64 * log_step).exp())
            };
            out[start + order[s]] = v;
        }
        start += wlen;
    }
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::grf;

    fn isa() -> IsabelaCompressor {
        IsabelaCompressor::default()
    }

    fn check_rel<F: Float>(data: &[F], dims: Dims, br: f64, cfg: &IsabelaCompressor) -> Vec<u8> {
        let bytes = cfg.compress_rel(data, dims, br).unwrap();
        let (dec, d2) = decompress::<F>(&bytes).unwrap();
        assert_eq!(d2, dims);
        for (idx, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            let (a, b) = (a.to_f64(), b.to_f64());
            if a == 0.0 {
                assert_eq!(b, 0.0, "idx {idx}: zero must stay exact");
            } else if a.is_finite() {
                let rel = (a - b).abs() / a.abs();
                assert!(rel <= br * (1.0 + 1e-12), "idx {idx}: rel {rel} > {br}");
            }
        }
        bytes
    }

    #[test]
    fn rel_bound_holds_smooth_data() {
        let dims = Dims::d1(4096);
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin() + 2.0).collect();
        for br in [1e-1, 1e-2, 1e-3] {
            check_rel(&data, dims, br, &isa());
        }
    }

    #[test]
    fn rel_bound_holds_signed_noisy_data() {
        let dims = Dims::d1(5000);
        let data = grf::white_noise(5000, 3);
        check_rel(&data, dims, 1e-2, &isa());
    }

    #[test]
    fn zeros_stay_exact() {
        let dims = Dims::d1(2048);
        let mut data = grf::white_noise(2048, 4);
        for i in (0..2048).step_by(7) {
            data[i] = 0.0;
        }
        let bytes = check_rel(&data, dims, 1e-2, &isa());
        let (dec, _) = decompress::<f32>(&bytes).unwrap();
        for i in (0..2048).step_by(7) {
            assert_eq!(dec[i], 0.0);
        }
    }

    #[test]
    fn index_overhead_caps_compression_ratio() {
        // Even extremely smooth data cannot beat ~32/10 because of the
        // stored permutation — ISABELA's defining weakness.
        let dims = Dims::d1(65536);
        let data: Vec<f32> = (0..65536).map(|i| 1.0 + i as f32 * 1e-6).collect();
        let bytes = check_rel(&data, dims, 1e-2, &isa());
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr < 4.0, "cr = {cr} (index overhead should cap CR)");
        assert!(cr > 1.2, "cr = {cr}");
    }

    #[test]
    fn partial_window_and_tiny_inputs() {
        let cfg = isa();
        for n in [1usize, 2, 3, 1023, 1025] {
            let dims = Dims::d1(n);
            let data: Vec<f32> = (0..n).map(|i| (i as f32 + 1.0) * 0.5).collect();
            check_rel(&data, dims, 1e-2, &cfg);
        }
    }

    #[test]
    fn multidimensional_data_flattens() {
        let dims = Dims::d2(32, 32);
        let data = grf::gaussian_field(dims, 5, 2, 2);
        check_rel(&data, dims, 1e-2, &isa());
    }

    #[test]
    fn nonfinite_values_escape_exactly() {
        let dims = Dims::d1(16);
        let mut data = vec![1.0f32; 16];
        data[3] = f32::NAN;
        data[8] = f32::INFINITY;
        let bytes = isa().compress_rel(&data, dims, 1e-2).unwrap();
        let (dec, _) = decompress::<f32>(&bytes).unwrap();
        assert!(dec[3].is_nan());
        assert_eq!(dec[8], f32::INFINITY);
    }

    #[test]
    fn f64_path() {
        let dims = Dims::d1(3000);
        let data: Vec<f64> = (0..3000)
            .map(|i| ((i as f64) * 0.1).cos() * 1e5 + 2e5)
            .collect();
        check_rel(&data, dims, 1e-3, &isa());
    }

    #[test]
    fn small_window_configuration() {
        let cfg = IsabelaCompressor {
            window: 64,
            knots: 8,
        };
        let dims = Dims::d1(1000);
        let data = grf::white_noise(1000, 9);
        check_rel(&data, dims, 5e-2, &cfg);
    }

    #[test]
    fn invalid_args_rejected() {
        let data = [1.0f32; 4];
        let dims = Dims::d1(4);
        assert!(isa().compress_rel(&data, dims, 0.0).is_err());
        assert!(isa().compress_rel(&data, Dims::d1(3), 0.1).is_err());
        let bad = IsabelaCompressor {
            window: 0,
            knots: 8,
        };
        assert!(bad.compress_rel(&data, dims, 0.1).is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let data = [1.0f32; 256];
        let bytes = isa().compress_rel(&data, Dims::d1(256), 0.1).unwrap();
        assert!(decompress::<f32>(&bytes[..10]).is_err());
        assert!(decompress::<f64>(&bytes).is_err());
    }
}
