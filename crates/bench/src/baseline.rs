//! Frozen copy of the seed byte-at-a-time bitstream engine.
//!
//! `pwrel-bitstream` was rewritten around a 64-bit accumulator with
//! unaligned word refills; this module preserves the engine it replaced —
//! byte-at-a-time `read_bits`/`write_bits`, bit-by-bit LSB paths, the
//! multi-byte `peek_bits` loop — together with the seed Huffman decoder and
//! ZFP plane coder built on it. `bench_entropy` measures the production
//! engine *against* this one, so the recorded speedups keep meaning "over
//! the seed engine" no matter how the live crate evolves. Do not optimise
//! anything here.

use pwrel_bitstream::{varint, Error, Result};

/// Seed MSB-first writer: one accumulator byte, flushed every 8 bits.
#[derive(Debug, Default, Clone)]
pub struct SeedBitWriter {
    bytes: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl SeedBitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with a byte-capacity hint.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.nbits as u64
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u64;
        self.nbits += 1;
        if self.nbits == 8 {
            self.bytes.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends the low `n` bits of `value`, most significant first.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let mut remaining = n;
        while remaining > 0 {
            let take = (8 - self.nbits).min(remaining);
            let shift = remaining - take;
            let chunk = (value >> shift) & ((1u64 << take) - 1);
            self.acc = (self.acc << take) | chunk;
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.bytes.push(self.acc as u8);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Appends `n` bits LSB-first — the seed engine's bit-by-bit loop.
    #[inline]
    pub fn write_bits_lsb(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in 0..n {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.bytes.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Finishes the stream (zero-padding the final byte) and returns it.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }
}

/// Seed MSB-first reader: per-byte indexing with a (pos, bit_pos) cursor.
#[derive(Debug, Clone)]
pub struct SeedBitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit_pos: u32,
}

impl<'a> SeedBitReader<'a> {
    /// Wraps a byte slice for bit-level reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            bit_pos: 0,
        }
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> u64 {
        self.pos as u64 * 8 + self.bit_pos as u64
    }

    /// Number of bits still available.
    pub fn bits_remaining(&self) -> u64 {
        self.bytes.len() as u64 * 8 - self.bits_read()
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = *self.bytes.get(self.pos).ok_or(Error::UnexpectedEof)?;
        let bit = (byte >> (7 - self.bit_pos)) & 1 == 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.pos += 1;
        }
        Ok(bit)
    }

    /// Reads `n` bits (≤ 64) into the low bits of the result, MSB first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        let mut out: u64 = 0;
        let mut remaining = n;
        while remaining > 0 {
            let avail = 8 - self.bit_pos;
            let take = avail.min(remaining);
            let byte = self.bytes[self.pos];
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.bit_pos += take;
            remaining -= take;
            if self.bit_pos == 8 {
                self.bit_pos = 0;
                self.pos += 1;
            }
        }
        Ok(out)
    }

    /// Reads `n` bits LSB-first — the seed engine's bit-by-bit loop.
    #[inline]
    pub fn read_bits_lsb(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        let mut out = 0u64;
        for i in 0..n {
            if self.read_bit()? {
                out |= 1u64 << i;
            }
        }
        Ok(out)
    }

    /// Returns the next `n` bits (≤ 32) without consuming them.
    #[inline]
    pub fn peek_bits(&self, n: u32) -> Result<u64> {
        debug_assert!(n <= 32);
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        let mut acc: u64 = 0;
        let first = self.pos;
        let nbytes = (self.bit_pos + n).div_ceil(8) as usize;
        for k in 0..nbytes {
            acc = (acc << 8) | self.bytes[first + k] as u64;
        }
        let total_bits = nbytes as u32 * 8;
        Ok((acc >> (total_bits - self.bit_pos - n)) & ((1u64 << n) - 1))
    }

    /// Consumes `n` bits previously inspected with `peek_bits`.
    #[inline]
    pub fn skip_bits(&mut self, n: u32) -> Result<()> {
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        let total = self.bit_pos + n;
        self.pos += (total / 8) as usize;
        self.bit_pos = total % 8;
        Ok(())
    }
}

/// Seed decode LUT width (identical to the live coder's).
const LUT_BITS: u32 = 11;
/// Seed maximum admissible code length.
const MAX_CODE_LEN: u32 = 48;

/// The seed canonical Huffman decoder: same tables as the live
/// `CanonicalCode`, but decoding through [`SeedBitReader`]'s per-symbol
/// `bits_remaining`/`peek_bits`/`skip_bits` sequence.
pub struct SeedCanonicalCode {
    sorted_symbols: Vec<u32>,
    counts: Vec<u32>,
    first_code: Vec<u64>,
    offsets: Vec<u32>,
    lut: Vec<(u32, u8)>,
}

impl SeedCanonicalCode {
    /// Builds decode tables from per-symbol code lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u32; max_len + 1];
        for &l in lens {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        let mut sorted: Vec<u32> = (0..lens.len() as u32)
            .filter(|&s| lens[s as usize] > 0)
            .collect();
        sorted.sort_by_key(|&s| (lens[s as usize], s));

        let mut first_code = vec![0u64; max_len + 1];
        let mut offsets = vec![0u32; max_len + 1];
        let mut code: u64 = 0;
        let mut offset: u32 = 0;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l] = code;
            offsets[l] = offset;
            code += counts[l] as u64;
            offset += counts[l];
        }

        let mut next = first_code.clone();
        let mut lut = vec![(0u32, 0u8); 1usize << LUT_BITS];
        for &s in &sorted {
            let l = lens[s as usize] as usize;
            let c = next[l];
            next[l] += 1;
            if l as u32 <= LUT_BITS {
                let lo = (c << (LUT_BITS - l as u32)) as usize;
                let hi = ((c + 1) << (LUT_BITS - l as u32)) as usize;
                for entry in lut.iter_mut().take(hi).skip(lo) {
                    *entry = (s, l as u8);
                }
            }
        }

        Self {
            sorted_symbols: sorted,
            counts,
            first_code,
            offsets,
            lut,
        }
    }

    /// Reads one symbol — the seed per-symbol fast/slow split.
    #[inline]
    pub fn decode(&self, r: &mut SeedBitReader) -> Result<u32> {
        if r.bits_remaining() >= LUT_BITS as u64 {
            let prefix = r.peek_bits(LUT_BITS)?;
            let (sym, len) = self.lut[prefix as usize];
            if len > 0 {
                r.skip_bits(len as u32)?;
                return Ok(sym);
            }
        }
        self.decode_slow(r)
    }

    fn decode_slow(&self, r: &mut SeedBitReader) -> Result<u32> {
        let mut code: u64 = 0;
        for len in 1..self.counts.len() {
            code = (code << 1) | r.read_bit()? as u64;
            let n = self.counts[len] as u64;
            if n > 0 {
                let first = self.first_code[len];
                if code < first + n {
                    let idx = self.offsets[len] as u64 + (code - first);
                    return Ok(self.sorted_symbols[idx as usize]);
                }
            }
        }
        Err(Error::InvalidValue("huffman code not in table"))
    }
}

/// Seed `decode_symbols`: parses the live serialized table format (which
/// has not changed), then decodes the payload symbol-by-symbol through
/// the byte-at-a-time reader.
pub fn seed_decode_symbols(data: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let alphabet = varint::read_uvarint(data, pos)? as usize;
    if alphabet > (1 << 28) {
        return Err(Error::InvalidValue("huffman alphabet too large"));
    }
    let n_used = varint::read_uvarint(data, pos)? as usize;
    if n_used > alphabet {
        return Err(Error::InvalidValue("more used symbols than alphabet"));
    }
    let mut lens = vec![0u32; alphabet];
    let mut sym = 0u64;
    for i in 0..n_used {
        let delta = varint::read_uvarint(data, pos)?;
        sym = if i == 0 { delta } else { sym + delta };
        let len = varint::read_uvarint(data, pos)? as u32;
        if sym as usize >= alphabet || len == 0 || len > MAX_CODE_LEN {
            return Err(Error::InvalidValue("bad huffman table entry"));
        }
        lens[sym as usize] = len;
    }
    let code = SeedCanonicalCode::from_lengths(&lens);
    let n = varint::read_uvarint(data, pos)? as usize;
    let payload_len = varint::read_uvarint(data, pos)? as usize;
    let end = pos.checked_add(payload_len).ok_or(Error::UnexpectedEof)?;
    if end > data.len() {
        return Err(Error::UnexpectedEof);
    }
    if (n as u64) > payload_len as u64 * 8 {
        return Err(Error::InvalidValue("symbol count exceeds payload bits"));
    }
    let mut r = SeedBitReader::new(&data[*pos..end]);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(code.decode(&mut r)?);
    }
    *pos = end;
    Ok(out)
}

/// Seed ZFP group-testing plane encoder (unbudgeted), verbatim from the
/// seed `nb.rs` but writing through [`SeedBitWriter`].
pub fn seed_encode_planes(w: &mut SeedBitWriter, coeffs: &[u64], intprec: u32, kmin: u32) {
    let size = coeffs.len();
    debug_assert!(size <= 64);
    let mut n: usize = 0;
    for k in (kmin..intprec).rev() {
        let mut x: u64 = 0;
        for (i, &c) in coeffs.iter().enumerate() {
            x |= ((c >> k) & 1) << i;
        }
        let m = n as u32;
        w.write_bits_lsb(x, m);
        x = if m >= 64 { 0 } else { x >> m };
        let mut n_cur = n;
        while n_cur < size {
            let more = x != 0;
            w.write_bit(more);
            if !more {
                break;
            }
            while n_cur < size - 1 {
                let bit = x & 1 == 1;
                w.write_bit(bit);
                if bit {
                    break;
                }
                x >>= 1;
                n_cur += 1;
            }
            x >>= 1;
            n_cur += 1;
        }
        n = n_cur;
    }
}

/// Seed ZFP group-testing plane decoder (unbudgeted), verbatim from the
/// seed `nb.rs` but reading through [`SeedBitReader`].
pub fn seed_decode_planes(
    r: &mut SeedBitReader,
    coeffs: &mut [u64],
    intprec: u32,
    kmin: u32,
) -> Result<()> {
    let size = coeffs.len();
    debug_assert!(size <= 64);
    let mut n: usize = 0;
    for k in (kmin..intprec).rev() {
        let m = n as u32;
        let mut x: u64 = r.read_bits_lsb(m)?;
        let mut n_cur = n;
        while n_cur < size {
            if !r.read_bit()? {
                break;
            }
            while n_cur < size - 1 {
                if r.read_bit()? {
                    break;
                }
                n_cur += 1;
            }
            x += 1u64 << n_cur;
            n_cur += 1;
        }
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c |= ((x >> i) & 1) << k;
        }
        n = n_cur;
    }
    Ok(())
}
