#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Shared harness for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (Sec. VI); see DESIGN.md for the index. This library
//! provides the common pieces: the codec roster, timing helpers, and plain
//! text table output.
//!
//! Binaries honour the `PWREL_SCALE` environment variable
//! (`small|medium|large`, default `medium`).

pub mod baseline;

use pwrel_core::LogBase;
use pwrel_data::{Dims, Field, Scale};
use pwrel_pipeline::{global, CompressOpts};
use std::time::Instant;

/// The compressor roster of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PwrCodec {
    /// ISABELA (sort + spline + index).
    Isabela,
    /// FPZIP driven by the loosest precision respecting the bound.
    Fpzip,
    /// SZ's blockwise PW_REL mode.
    SzPwr,
    /// SZ + the paper's log transform ("our solution").
    SzT(LogBase),
    /// ZFP + the paper's log transform.
    ZfpT(LogBase),
    /// ZFP's fixed-precision pseudo-relative mode.
    ZfpP,
}

/// All codecs in the order the paper's figures list them.
pub const FIG2_ROSTER: [PwrCodec; 5] = [
    PwrCodec::SzPwr,
    PwrCodec::Fpzip,
    PwrCodec::Isabela,
    PwrCodec::ZfpT(LogBase::Two),
    PwrCodec::SzT(LogBase::Two),
];

impl PwrCodec {
    /// Display label matching the paper's naming.
    pub fn label(&self) -> String {
        match self {
            PwrCodec::Isabela => "ISABELA".into(),
            PwrCodec::Fpzip => "FPZIP".into(),
            PwrCodec::SzPwr => "SZ_PWR".into(),
            PwrCodec::SzT(LogBase::Two) => "SZ_T".into(),
            PwrCodec::SzT(b) => format!("SZ_T(base {b:?})"),
            PwrCodec::ZfpT(LogBase::Two) => "ZFP_T".into(),
            PwrCodec::ZfpT(b) => format!("ZFP_T(base {b:?})"),
            PwrCodec::ZfpP => "ZFP_P".into(),
        }
    }

    /// The registered codec name backing this roster entry.
    pub fn registry_name(&self) -> &'static str {
        match self {
            PwrCodec::Isabela => "isabela",
            PwrCodec::Fpzip => "fpzip",
            PwrCodec::SzPwr => "sz_pwr",
            PwrCodec::SzT(_) => "sz_t",
            PwrCodec::ZfpT(_) => "zfp_t",
            PwrCodec::ZfpP => "zfp_p",
        }
    }

    /// Registry options for the bound `br` (the transform codecs carry
    /// their log base; the rest ignore it).
    fn opts(&self, br: f64) -> CompressOpts {
        let base = match self {
            PwrCodec::SzT(b) | PwrCodec::ZfpT(b) => *b,
            _ => LogBase::Two,
        };
        CompressOpts { bound: br, base }
    }

    /// Compresses `field` under the point-wise relative bound `br`
    /// through the codec registry (the `_T` codecs take the fused
    /// single-pass path inside their registry adapters).
    pub fn compress(&self, field: &Field<f32>, br: f64) -> Vec<u8> {
        global()
            .compress(
                self.registry_name(),
                &field.data,
                field.dims,
                &self.opts(br),
            )
            .unwrap_or_else(|e| panic!("{} compress: {e:?}", self.label()))
    }

    /// Decompresses a stream produced by [`PwrCodec::compress`]. The
    /// container header carries the codec id, so no per-codec dispatch
    /// happens here.
    pub fn decompress(&self, bytes: &[u8]) -> (Vec<f32>, Dims) {
        global()
            .decompress::<f32>(bytes)
            .unwrap_or_else(|e| panic!("{} decompress: {e:?}", self.label()))
    }
}

/// Finds the parameter value whose compressed stream hits a target
/// compression ratio, by bisection over a monotone `compress` parameter
/// (larger parameter → smaller stream). Returns `(param, stream)`.
///
/// Used by the Figure 4/5 experiments, which compare codecs *at matched
/// compression ratio* rather than matched bound.
pub fn calibrate_to_ratio(
    raw_bytes: usize,
    target_cr: f64,
    mut lo: f64,
    mut hi: f64,
    compress: impl Fn(f64) -> Vec<u8>,
) -> (f64, Vec<u8>) {
    let mut best: Option<(f64, Vec<u8>)> = None;
    for _ in 0..24 {
        let mid = (lo * hi).sqrt(); // geometric: params span decades
        let stream = compress(mid);
        let cr = raw_bytes as f64 / stream.len() as f64;
        let better = match &best {
            None => true,
            Some((p, s)) => {
                let prev_cr = raw_bytes as f64 / s.len() as f64;
                let _ = p;
                (cr - target_cr).abs() < (prev_cr - target_cr).abs()
            }
        };
        if better {
            best = Some((mid, stream));
        }
        if cr < target_cr {
            lo = mid; // need looser parameter
        } else {
            hi = mid;
        }
    }
    best.expect("calibration ran")
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Reads the dataset scale from `PWREL_SCALE` (default `medium`).
pub fn scale_from_env() -> Scale {
    match std::env::var("PWREL_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        Ok("large") => Scale::Large,
        _ => Scale::Medium,
    }
}

/// Plain-text table printer with right-aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Writes a grayscale PGM image (for the Figure 4/5 visual outputs).
pub fn write_pgm(path: &str, width: usize, height: usize, pixels: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    assert_eq!(pixels.len(), width * height);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5\n{width} {height}\n255")?;
    f.write_all(pixels)?;
    Ok(())
}

/// Maps a slice of values to 8-bit grayscale over `[lo, hi]` (clamped).
pub fn to_grayscale(values: &[f32], lo: f64, hi: f64) -> Vec<u8> {
    values
        .iter()
        .map(|&v| {
            let t = ((v as f64 - lo) / (hi - lo)).clamp(0.0, 1.0);
            (t * 255.0) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::nyx;

    #[test]
    fn roster_round_trips_every_codec() {
        let field = nyx::dark_matter_density(Scale::Small);
        let roster = [
            PwrCodec::Isabela,
            PwrCodec::Fpzip,
            PwrCodec::SzPwr,
            PwrCodec::SzT(LogBase::Two),
            PwrCodec::ZfpT(LogBase::Two),
            PwrCodec::ZfpP,
        ];
        for codec in roster {
            let bytes = codec.compress(&field, 1e-2);
            let (dec, dims) = codec.decompress(&bytes);
            assert_eq!(dims, field.dims, "{}", codec.label());
            assert_eq!(dec.len(), field.data.len(), "{}", codec.label());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PwrCodec::SzT(LogBase::Two).label(), "SZ_T");
        assert_eq!(PwrCodec::ZfpT(LogBase::Two).label(), "ZFP_T");
        assert_eq!(PwrCodec::ZfpP.label(), "ZFP_P");
        assert_eq!(PwrCodec::SzT(LogBase::E).label(), "SZ_T(base E)");
    }

    #[test]
    fn grayscale_mapping() {
        let px = to_grayscale(&[0.0, 0.5, 1.0, 2.0], 0.0, 1.0);
        assert_eq!(px, vec![0, 127, 255, 255]);
    }

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2.345".into()]);
        t.print();
    }
}
