#![forbid(unsafe_code)]
//! Ablation: SZ's quantization-interval capacity.
//!
//! SZ quantizes prediction errors into `capacity` bins; errors that fall
//! outside become verbatim "unpredictable" values. Too few bins push
//! hard-to-predict points into the 4-byte escape path; too many bins cost
//! Huffman table overhead without helping. 65536 (SZ 1.4's scale) is the
//! sweet spot for bounded data — this sweep shows why.

use pwrel_bench::{scale_from_env, timed, Table};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::nyx;
use pwrel_sz::SzCompressor;

fn main() {
    let scale = scale_from_env();
    let field = nyx::dark_matter_density(scale);
    println!(
        "Ablation: SZ quantization capacity on {} ({}, SZ_T)\n",
        field.name, field.dims
    );

    let mut table = Table::new(&["capacity", "br=1e-2 CR", "br=1e-4 CR", "compress (ms)"]);
    for capacity in [16u32, 256, 4096, 65536, 262144] {
        let codec = PwRelCompressor::new(
            SzCompressor {
                capacity,
                ..SzCompressor::default()
            },
            LogBase::Two,
        );
        let (loose, dt) = timed(|| codec.compress(&field.data, field.dims, 1e-2).unwrap());
        let tight = codec.compress(&field.data, field.dims, 1e-4).unwrap();
        // Bound must hold at any capacity.
        let dec: Vec<f32> = codec.decompress(&loose).unwrap();
        for (&a, &b) in field.data.iter().zip(&dec) {
            assert!(a == 0.0 || ((a as f64 - b as f64) / a as f64).abs() <= 1e-2);
        }
        table.row(vec![
            capacity.to_string(),
            format!("{:.3}", field.nbytes() as f64 / loose.len() as f64),
            format!("{:.3}", field.nbytes() as f64 / tight.len() as f64),
            format!("{:.1}", dt * 1e3),
        ]);
    }
    table.print();
    println!("\n(small capacities hurt tight bounds most: more prediction errors escape");
    println!(" the quantizer and are stored verbatim)");
}
