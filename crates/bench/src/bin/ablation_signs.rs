#![forbid(unsafe_code)]
//! Ablation: sign-bitmap handling in the log transform.
//!
//! Algorithm 1 compresses one sign bit per value when the field mixes
//! signs. This measures what that costs (bytes + share of the stream) for
//! sign structures from "all positive" (free) to "random signs"
//! (incompressible, 1 bit/value), and confirms the RLE+LZ pipeline beats
//! plain bit-packing on realistic banded sign patterns.

use pwrel_bench::Table;
use pwrel_core::transform::{self, LogBase};
use pwrel_data::{grf, Dims};

fn main() {
    let n = 1 << 20;
    let dims = Dims::d1(n);
    let base_mag: Vec<f32> = grf::gaussian_field(dims, 77, 4, 3)
        .iter()
        .map(|v| v.abs() + 0.1)
        .collect();

    type SignPattern = Box<dyn Fn(usize) -> bool>;
    let patterns: Vec<(&str, SignPattern)> = vec![
        ("all positive", Box::new(|_| false)),
        (
            "one negative region",
            Box::new(move |i| (n / 4..n / 2).contains(&i)),
        ),
        ("banded (runs of 1000)", Box::new(|i| (i / 1000) % 2 == 1)),
        ("checkerboard", Box::new(|i| i % 2 == 1)),
        (
            "pseudo-random",
            Box::new(|i| {
                // splitmix64-style hash: genuinely incompressible signs.
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            }),
        ),
    ];

    println!("Ablation: sign-section cost in the log transform (n = {n})\n");
    let mut table = Table::new(&[
        "sign pattern",
        "sign bytes",
        "bits/value",
        "vs packed (n/8)",
    ]);
    for (name, neg) in &patterns {
        let data: Vec<f32> = base_mag
            .iter()
            .enumerate()
            .map(|(i, &m)| if neg(i) { -m } else { m })
            .collect();
        let t = transform::forward(&data, LogBase::Two, 1e-3, 2.0).unwrap();
        let bytes = t.sign_section.as_ref().map_or(0, |s| s.len());
        table.row(vec![
            name.to_string(),
            bytes.to_string(),
            format!("{:.4}", bytes as f64 * 8.0 / n as f64),
            format!("{:.2}x", bytes as f64 / (n as f64 / 8.0)),
        ]);
    }
    table.print();
    println!("\n(realistic sign structure costs ≪ 1 bit/value; even adversarial random");
    println!(" signs stay ≈ 1 bit/value thanks to the packed fallback)");
}
