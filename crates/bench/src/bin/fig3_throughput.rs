#![forbid(unsafe_code)]
//! Figure 3: compression and decompression rate (MB/s) for all datasets
//! and compressors, across point-wise relative error bounds.
//!
//! Expected shape: FPZIP fastest to compress; SZ_T faster than SZ_PWR (no
//! per-block bookkeeping); ISABELA slowest (sorting); decompression rates
//! comparable for everything except ISABELA.

use pwrel_bench::{scale_from_env, timed, Table, FIG2_ROSTER};
use pwrel_data::all_datasets;
use pwrel_metrics::ratio::throughput_mb_s;

fn main() {
    let scale = scale_from_env();
    let bounds = [1e-4, 1e-3, 1e-2, 1e-1];

    println!("Figure 3: compression/decompression rate in MB/s (scale {scale:?})\n");
    for ds in all_datasets(scale) {
        println!(
            "--- {} ({:.1} MB raw) ---",
            ds.name,
            ds.total_bytes() as f64 / 1e6
        );
        let mut comp_table = Table::new(&["codec", "1e-4", "1e-3", "1e-2", "1e-1"]);
        let mut dec_table = Table::new(&["codec", "1e-4", "1e-3", "1e-2", "1e-1"]);
        for codec in FIG2_ROSTER {
            let mut comp_cells = vec![codec.label()];
            let mut dec_cells = vec![codec.label()];
            for &br in &bounds {
                let mut comp_s = 0.0;
                let mut dec_s = 0.0;
                let mut raw = 0usize;
                for field in &ds.fields {
                    let (bytes, dt) = timed(|| codec.compress(field, br));
                    comp_s += dt;
                    let (out, dt2) = timed(|| codec.decompress(&bytes));
                    dec_s += dt2;
                    assert_eq!(out.0.len(), field.data.len());
                    raw += field.nbytes();
                }
                comp_cells.push(format!("{:.1}", throughput_mb_s(raw, comp_s)));
                dec_cells.push(format!("{:.1}", throughput_mb_s(raw, dec_s)));
            }
            comp_table.row(comp_cells);
            dec_table.row(dec_cells);
        }
        println!("compression rate (MB/s):");
        comp_table.print();
        println!("decompression rate (MB/s):");
        dec_table.print();
        println!();
    }
    println!("(paper Fig. 3: FPZIP leads compression; ISABELA slowest; others comparable)");
}
