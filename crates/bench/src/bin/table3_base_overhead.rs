#![forbid(unsafe_code)]
//! Table III: pre-/post-processing time of the transform under different
//! logarithm bases.
//!
//! Paper finding: base 10 post-processing is slow (no fast `10^x`), base e
//! is fastest forward but slower backward than base 2 — hence base 2.

use pwrel_bench::{scale_from_env, timed, Table};
use pwrel_core::{transform, LogBase};
use pwrel_data::nyx;

fn main() {
    let scale = scale_from_env();
    let fields = [nyx::dark_matter_density(scale), nyx::velocity_x(scale)];
    let bases = [LogBase::Two, LogBase::E, LogBase::Ten];
    let br = 1e-3;
    const REPS: usize = 5;

    println!("Table III: transform (pre/post-processing) time per base, {REPS} reps");
    println!("(dims {} per field, scale {scale:?})\n", fields[0].dims);

    let mut table = Table::new(&["field", "phase", "base 2 (s)", "base e (s)", "base 10 (s)"]);
    for field in &fields {
        let mut pre = Vec::new();
        let mut post = Vec::new();
        for &base in &bases {
            let mut t_pre = 0.0;
            let mut t_post = 0.0;
            let mut sink = 0usize;
            for _ in 0..REPS {
                let (t, dt) = timed(|| transform::forward(&field.data, base, br, 2.0).unwrap());
                t_pre += dt;
                let (back, dt2) = timed(|| {
                    transform::inverse(&t.mapped, base, t.zero_threshold, t.sign_section.as_deref())
                        .unwrap()
                });
                t_post += dt2;
                sink += back.len();
            }
            assert_eq!(sink, REPS * field.data.len());
            pre.push(t_pre);
            post.push(t_post);
        }
        table.row(
            std::iter::once(field.name.clone())
                .chain(std::iter::once("pre-processing".into()))
                .chain(pre.iter().map(|t| format!("{t:.3}")))
                .collect(),
        );
        table.row(
            std::iter::once(field.name.clone())
                .chain(std::iter::once("post-processing".into()))
                .chain(post.iter().map(|t| format!("{t:.3}")))
                .collect(),
        );
    }
    table.print();
    println!("\n(paper Table III: base 10 post-processing ~3-4x slower; base 2 chosen)");
}
