#![forbid(unsafe_code)]
//! Runs every table/figure reproduction in sequence (the full Sec. VI
//! evaluation). Equivalent to invoking each `tableN_*`/`figN_*` binary.

use std::process::Command;

fn main() {
    let bins = [
        "table2_bases",
        "fig1_zfp_bases",
        "table3_base_overhead",
        "table4_strict_bound",
        "fig2_compression_ratio",
        "fig3_throughput",
        "fig4_multiprecision",
        "fig5_angle_skew",
        "fig6_parallel",
        // Ablations beyond the paper (design-choice studies from DESIGN.md).
        "ablation_roundoff",
        "ablation_pwr_block",
        "ablation_capacity",
        "ablation_zfp_modes",
        "ablation_predictor",
        "ablation_signs",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n========================= {bin} =========================\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
