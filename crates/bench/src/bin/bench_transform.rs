#![forbid(unsafe_code)]
//! Emits `BENCH_transform.json`: f64 base-2 forward + inverse transform
//! throughput for the fast batched kernels vs the scalar libm baseline.
//!
//! The recorded `speedup_fwd_plus_inv` is the acceptance metric for the
//! kernel work (target ≥ 1.5×). Honours `PWREL_SCALE` and writes the JSON
//! next to the current directory so a repo-root invocation lands it at
//! `/BENCH_transform.json`.

use pwrel_bench::{scale_from_env, timed};
use pwrel_core::{transform, Kernel, LogBase};
use pwrel_data::nyx;

#[derive(Clone, Copy)]
struct Phase {
    fwd_s: f64,
    inv_s: f64,
}

/// One timed forward + inverse pass.
fn one_pass(data: &[f64], kernel: Kernel) -> Phase {
    let base = LogBase::Two;
    let br = 1e-3;
    let (t, fwd_s) = timed(|| transform::forward_with_kernel(data, base, br, 2.0, kernel).unwrap());
    let (back, inv_s) = timed(|| {
        transform::inverse_with_kernel(
            &t.mapped,
            base,
            t.zero_threshold,
            t.sign_section.as_deref(),
            kernel,
        )
        .unwrap()
    });
    assert_eq!(back.len(), data.len());
    Phase { fwd_s, inv_s }
}

/// Best-of-`reps`, with the two kernels interleaved within every rep so
/// frequency drift and scheduler noise land on both sides equally.
fn measure(data: &[f64], reps: usize) -> (Phase, Phase) {
    let mut fast = Phase {
        fwd_s: f64::INFINITY,
        inv_s: f64::INFINITY,
    };
    let mut libm = fast;
    one_pass(data, Kernel::Fast); // warm-up: page in the dataset
    for _ in 0..reps {
        let f = one_pass(data, Kernel::Fast);
        let l = one_pass(data, Kernel::Libm);
        fast.fwd_s = fast.fwd_s.min(f.fwd_s);
        fast.inv_s = fast.inv_s.min(f.inv_s);
        libm.fwd_s = libm.fwd_s.min(l.fwd_s);
        libm.inv_s = libm.inv_s.min(l.inv_s);
    }
    (fast, libm)
}

fn main() {
    let scale = scale_from_env();
    let field = nyx::dark_matter_density(scale);
    let data: Vec<f64> = field.data.iter().map(|&x| x as f64).collect();
    let nbytes = data.len() * 8;
    let reps = 15;

    let (fast, libm) = measure(&data, reps);

    let gibs = |s: f64| nbytes as f64 / s / (1u64 << 30) as f64;
    let speedup = (libm.fwd_s + libm.inv_s) / (fast.fwd_s + fast.inv_s);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"transform_kernels\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"elements\": {},\n",
            "  \"dtype\": \"f64\",\n",
            "  \"base\": \"Two\",\n",
            "  \"rel_bound\": 1e-3,\n",
            "  \"reps\": {},\n",
            "  \"fast\": {{\"forward_s\": {:.6}, \"inverse_s\": {:.6}, ",
            "\"forward_gib_s\": {:.3}, \"inverse_gib_s\": {:.3}}},\n",
            "  \"libm\": {{\"forward_s\": {:.6}, \"inverse_s\": {:.6}, ",
            "\"forward_gib_s\": {:.3}, \"inverse_gib_s\": {:.3}}},\n",
            "  \"speedup_fwd\": {:.3},\n",
            "  \"speedup_inv\": {:.3},\n",
            "  \"speedup_fwd_plus_inv\": {:.3}\n",
            "}}\n",
        ),
        field.name,
        scale,
        data.len(),
        reps,
        fast.fwd_s,
        fast.inv_s,
        gibs(fast.fwd_s),
        gibs(fast.inv_s),
        libm.fwd_s,
        libm.inv_s,
        gibs(libm.fwd_s),
        gibs(libm.inv_s),
        libm.fwd_s / fast.fwd_s,
        libm.inv_s / fast.inv_s,
        speedup,
    );
    print!("{json}");
    std::fs::write("BENCH_transform.json", &json).expect("write BENCH_transform.json");
    eprintln!("wrote BENCH_transform.json (speedup fwd+inv: {speedup:.2}x)");
}
