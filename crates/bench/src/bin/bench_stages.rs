#![forbid(unsafe_code)]
//! Emits `BENCH_stages.json`: per-stage wall-clock breakdowns for the two
//! transform codecs (`sz_t`, `zfp_t`), recorded through the `pwrel-trace`
//! layer on a traced compress + decompress round trip.
//!
//! Complements `BENCH_transform.json` / `BENCH_entropy.json`, which time
//! isolated kernels: this bench shows where a whole pipeline run spends
//! its time, stage by stage, as the registry reports it. Honours
//! `PWREL_SCALE` and writes the JSON next to the current directory so a
//! repo-root invocation lands it at `/BENCH_stages.json`.

use pwrel_bench::scale_from_env;
use pwrel_pipeline::{global, CompressOpts};
use pwrel_trace::{export, stage, TraceSink};

/// One traced round trip; returns the sink plus the container size.
fn traced_round_trip(codec: &str, data: &[f32], dims: pwrel_data::Dims) -> (TraceSink, usize) {
    let sink = TraceSink::new();
    let stream = global()
        .compress_traced(codec, data, dims, &CompressOpts::rel(1e-3), &sink)
        .unwrap_or_else(|e| panic!("{codec} compress: {e:?}"));
    let (back, _) = global()
        .decompress_traced::<f32>(&stream, &sink)
        .unwrap_or_else(|e| panic!("{codec} decompress: {e:?}"));
    assert_eq!(back.len(), data.len());
    (sink, stream.len())
}

/// Renders one codec's stage rows as a JSON object, root spans first.
fn stages_json(sink: &TraceSink) -> String {
    let rows = export::stage_rows(sink);
    let mut names: Vec<&str> = rows.keys().copied().collect();
    // Roots first, then the per-stage spans in alphabetical order.
    names.sort_by_key(|n| (*n != stage::COMPRESS, *n != stage::DECOMPRESS, *n));
    let body: Vec<String> = names
        .iter()
        .map(|name| {
            let row = &rows[name];
            format!(
                "      \"{}\": {{\"calls\": {}, \"total_ms\": {:.3}}}",
                name,
                row.calls,
                row.total_ns as f64 / 1e6
            )
        })
        .collect();
    format!("{{\n{}\n    }}", body.join(",\n"))
}

fn main() {
    let scale = scale_from_env();
    let field = pwrel_data::nyx::dark_matter_density(scale);
    let nbytes = field.data.len() * 4;

    let mut entries = Vec::new();
    for codec in ["sz_t", "zfp_t"] {
        // Warm-up pass pages the dataset in; the recorded pass follows.
        traced_round_trip(codec, &field.data, field.dims);
        let (sink, compressed) = traced_round_trip(codec, &field.data, field.dims);
        let ratio = nbytes as f64 / compressed as f64;
        entries.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"compressed_bytes\": {},\n",
                "      \"ratio\": {:.3},\n",
                "      \"stages\": {}\n",
                "    }}",
            ),
            codec,
            compressed,
            ratio,
            stages_json(&sink),
        ));
        eprintln!("{codec}: ratio {ratio:.2}");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeline_stages\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"elements\": {},\n",
            "  \"dtype\": \"f32\",\n",
            "  \"rel_bound\": 1e-3,\n",
            "  \"codecs\": {{\n",
            "{}\n",
            "  }}\n",
            "}}\n",
        ),
        field.name,
        scale,
        field.data.len(),
        entries.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_stages.json", &json).expect("write BENCH_stages.json");
    eprintln!("wrote BENCH_stages.json");
}
