#![forbid(unsafe_code)]
//! Emits `BENCH_stages.json`: per-stage wall-clock breakdowns for the two
//! transform codecs (`sz_t`, `zfp_t`), recorded through the `pwrel-trace`
//! layer on a traced compress + decompress round trip.
//!
//! Complements `BENCH_transform.json` / `BENCH_entropy.json`, which time
//! isolated kernels: this bench shows where a whole pipeline run spends
//! its time, stage by stage, as the registry reports it. Honours
//! `PWREL_SCALE` and writes the JSON next to the current directory so a
//! repo-root invocation lands it at `/BENCH_stages.json`.
//!
//! Each codec is measured `PWREL_STAGE_REPS` times (default 5) after a
//! warm-up pass and the rep with the smallest compress + decompress total
//! is reported — single-shot stage numbers on a shared machine are
//! dominated by scheduler and frequency noise.
//!
//! `--gate <committed BENCH_stages.json>` switches to regression-gate
//! mode: instead of writing the JSON, the hot-kernel stages
//! (`predict_quantize`, `huffman`, `lz`, `plane_code`) are compared per
//! element against the committed file and the process exits non-zero if
//! any regressed by more than 15%. Run it at the committed file's scale (`PWREL_SCALE=
//! medium` for the checked-in baseline — itself smoke-sized): per-element
//! cost is *not* scale-invariant for `plane_code`, whose edge-block
//! padding overhead grows as grids shrink.

use pwrel_bench::scale_from_env;
use pwrel_pipeline::{global, CompressOpts};
use pwrel_trace::{export, stage, TraceSink};

/// One traced round trip; returns the sink plus the container size.
fn traced_round_trip(codec: &str, data: &[f32], dims: pwrel_data::Dims) -> (TraceSink, usize) {
    let sink = TraceSink::new();
    let stream = global()
        .compress_traced(codec, data, dims, &CompressOpts::rel(1e-3), &sink)
        .unwrap_or_else(|e| panic!("{codec} compress: {e:?}"));
    let (back, _) = global()
        .decompress_traced::<f32>(&stream, &sink)
        .unwrap_or_else(|e| panic!("{codec} decompress: {e:?}"));
    assert_eq!(back.len(), data.len());
    (sink, stream.len())
}

/// Renders one codec's stage rows as a JSON object, root spans first.
fn stages_json(sink: &TraceSink) -> String {
    let rows = export::stage_rows(sink);
    let mut names: Vec<&str> = rows.keys().copied().collect();
    // Roots first, then the per-stage spans in alphabetical order.
    names.sort_by_key(|n| (*n != stage::COMPRESS, *n != stage::DECOMPRESS, *n));
    let body: Vec<String> = names
        .iter()
        .map(|name| {
            let row = &rows[name];
            format!(
                "      \"{}\": {{\"calls\": {}, \"total_ms\": {:.3}}}",
                name,
                row.calls,
                row.total_ns as f64 / 1e6
            )
        })
        .collect();
    format!("{{\n{}\n    }}", body.join(",\n"))
}

/// Total nanoseconds the sink attributes to the round-trip roots; the
/// rep-selection metric.
fn round_trip_ns(sink: &TraceSink) -> u64 {
    let rows = export::stage_rows(sink);
    [stage::COMPRESS, stage::DECOMPRESS]
        .iter()
        .map(|name| rows.get(name).map_or(0, |row| row.total_ns))
        .sum()
}

/// One stage's `total_ms` from a committed `BENCH_stages.json` — a
/// positional extractor over this binary's own output format (each gated
/// stage name appears exactly once), so the gate needs no JSON parser.
fn committed_total_ms(text: &str, stage_name: &str) -> Option<f64> {
    let at = text.find(&format!("\"{stage_name}\""))?;
    let rest = &text[at..];
    let val = &rest[rest.find("\"total_ms\": ")? + "\"total_ms\": ".len()..];
    let end = val.find('}')?;
    val[..end].trim().parse().ok()
}

/// The committed run's element count (for per-element normalization).
fn committed_elements(text: &str) -> Option<f64> {
    let val = &text[text.find("\"elements\": ")? + "\"elements\": ".len()..];
    let end = val.find(',')?;
    val[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).expect("--gate requires a path").clone());

    let scale = scale_from_env();
    let field = pwrel_data::nyx::dark_matter_density(scale);
    let nbytes = field.data.len() * 4;
    let reps: usize = std::env::var("PWREL_STAGE_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5);

    let mut entries = Vec::new();
    let mut best_sinks = Vec::new();
    for codec in ["sz_t", "zfp_t"] {
        // Warm-up pass pages the dataset in; best-of-reps follows.
        traced_round_trip(codec, &field.data, field.dims);
        let (mut sink, mut compressed) = traced_round_trip(codec, &field.data, field.dims);
        for _ in 1..reps {
            let (s, c) = traced_round_trip(codec, &field.data, field.dims);
            if round_trip_ns(&s) < round_trip_ns(&sink) {
                (sink, compressed) = (s, c);
            }
        }
        let ratio = nbytes as f64 / compressed as f64;
        entries.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"compressed_bytes\": {},\n",
                "      \"ratio\": {:.3},\n",
                "      \"stages\": {}\n",
                "    }}",
            ),
            codec,
            compressed,
            ratio,
            stages_json(&sink),
        ));
        eprintln!("{codec}: ratio {ratio:.2}");
        best_sinks.push((codec, sink));
    }

    if let Some(path) = gate_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let base_elems = committed_elements(&committed).expect("baseline elements");
        let cur_elems = field.data.len() as f64;
        let mut failed = false;
        for (codec, stage_name) in [
            ("sz_t", stage::PREDICT_QUANTIZE),
            ("sz_t", stage::HUFFMAN),
            ("sz_t", stage::LZ),
            ("zfp_t", stage::PLANE_CODE),
        ] {
            let sink = &best_sinks.iter().find(|(c, _)| *c == codec).unwrap().1;
            let rows = export::stage_rows(sink);
            let cur_ms = rows[stage_name].total_ns as f64 / 1e6;
            let base_ms = committed_total_ms(&committed, stage_name)
                .unwrap_or_else(|| panic!("baseline missing stage {stage_name}"));
            let cur_per = cur_ms / cur_elems;
            let base_per = base_ms / base_elems;
            let delta = (cur_per / base_per - 1.0) * 100.0;
            eprintln!(
                "gate {codec}/{stage_name}: {:.2} vs committed {:.2} ns/elem ({delta:+.1}%)",
                cur_per * 1e6,
                base_per * 1e6,
            );
            if cur_per > base_per * 1.15 {
                failed = true;
            }
        }
        if failed {
            eprintln!("stage gate FAILED: hot-kernel stage regressed > 15% per element");
            std::process::exit(1);
        }
        eprintln!("stage gate passed");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeline_stages\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"elements\": {},\n",
            "  \"dtype\": \"f32\",\n",
            "  \"rel_bound\": 1e-3,\n",
            "  \"codecs\": {{\n",
            "{}\n",
            "  }}\n",
            "}}\n",
        ),
        field.name,
        scale,
        field.data.len(),
        entries.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_stages.json", &json).expect("write BENCH_stages.json");
    eprintln!("wrote BENCH_stages.json");
}
