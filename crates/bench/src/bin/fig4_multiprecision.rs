#![forbid(unsafe_code)]
//! Figure 4: multiprecision distortion of a dark-matter-density slice when
//! every compressor is tuned to the *same* compression ratio (7 in the
//! paper).
//!
//! Outputs PGM images (original + per-codec reconstructions, full range
//! `[0,1]` and zoom `[0,0.1]`) under `target/fig4/`, and prints the max
//! point-wise relative error achieved by each codec at the matched ratio —
//! the number that explains the visual quality difference (paper: FPZIP
//! needs b_r ≈ 0.5 to reach CR 7, SZ_T only ≈ 0.15).

use pwrel_bench::{calibrate_to_ratio, scale_from_env, to_grayscale, write_pgm, Table};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::nyx;
use pwrel_fpzip::FpzipCompressor;
use pwrel_metrics::{ssim_2d, ErrorStats, RelErrorStats};
use pwrel_sz::SzCompressor;

fn main() {
    let scale = scale_from_env();
    let field = nyx::dark_matter_density(scale);
    let target_cr = 7.0;
    let raw = field.nbytes();
    let out_dir = "target/fig4";
    std::fs::create_dir_all(out_dir).expect("mkdir fig4");

    println!(
        "Figure 4: multiprecision distortion at matched CR = {target_cr} on {} ({})\n",
        field.name, field.dims
    );

    let sz = SzCompressor::default();
    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);

    // SZ_ABS: tune the absolute bound.
    let (abs_eb, abs_stream) = calibrate_to_ratio(raw, target_cr, 1e-6, 10.0, |eb| {
        sz.compress_abs(&field.data, field.dims, eb).unwrap()
    });
    // FPZIP: precision is integral; scan for the closest ratio.
    let (fpz_p, fpz_stream) = (10u32..=30)
        .map(|p| {
            (
                p,
                FpzipCompressor::new(p)
                    .compress(&field.data, field.dims)
                    .unwrap(),
            )
        })
        .min_by_key(|(_, s)| {
            let cr = raw as f64 / s.len() as f64;
            ((cr - target_cr).abs() * 1e6) as u64
        })
        .unwrap();
    // SZ_T: tune the point-wise relative bound.
    let (szt_br, szt_stream) = calibrate_to_ratio(raw, target_cr, 1e-6, 0.999, |br| {
        sz_t.compress(&field.data, field.dims, br).unwrap()
    });

    let runs: Vec<(&str, String, Vec<f32>)> = vec![
        (
            "SZ_ABS",
            format!("abs eb = {abs_eb:.3e}"),
            sz.decompress::<f32>(&abs_stream).unwrap().0,
        ),
        (
            "FPZIP",
            format!(
                "-p {fpz_p} (pw rel {:.3})",
                pwrel_fpzip::rel_bound_for_precision::<f32>(fpz_p)
            ),
            pwrel_fpzip::decompress::<f32>(&fpz_stream).unwrap().0,
        ),
        (
            "SZ_T",
            format!("pw rel = {szt_br:.3}"),
            sz_t.decompress::<f32>(&szt_stream).unwrap(),
        ),
    ];
    let streams = [abs_stream.len(), fpz_stream.len(), szt_stream.len()];

    // Slice visualisations.
    let plane = field.dims.nz / 2;
    let (w, h) = (field.dims.nx, field.dims.ny);
    let slice_orig = field.slice_z(plane);
    write_pgm(
        &format!("{out_dir}/original_full.pgm"),
        w,
        h,
        &to_grayscale(&slice_orig, 0.0, 1.0),
    )
    .unwrap();
    write_pgm(
        &format!("{out_dir}/original_zoom.pgm"),
        w,
        h,
        &to_grayscale(&slice_orig, 0.0, 0.1),
    )
    .unwrap();

    let mut table = Table::new(&[
        "codec",
        "setting",
        "CR",
        "max rel E",
        "avg abs E",
        "PSNR",
        "SSIM [0,1]",
    ]);
    for ((name, setting, dec), bytes) in runs.iter().zip(streams) {
        let start = plane * w * h;
        let slice: Vec<f32> = dec[start..start + w * h].to_vec();
        write_pgm(
            &format!("{out_dir}/{}_full.pgm", name.to_lowercase()),
            w,
            h,
            &to_grayscale(&slice, 0.0, 1.0),
        )
        .unwrap();
        write_pgm(
            &format!("{out_dir}/{}_zoom.pgm", name.to_lowercase()),
            w,
            h,
            &to_grayscale(&slice, 0.0, 0.1),
        )
        .unwrap();

        let rel = RelErrorStats::compute(&field.data, dec, 1.0);
        let abs = ErrorStats::compute(&field.data, dec);
        // SSIM over the paper's display window [0, 1]: the dense region
        // whose distortion the figure is about (unclamped SSIM saturates,
        // dominated by the ~1e3 tail).
        let clamp01 = |v: &[f32]| -> Vec<f32> { v.iter().map(|x| x.clamp(0.0, 1.0)).collect() };
        let ssim = ssim_2d(&clamp01(&slice_orig), &clamp01(&slice), w, h);
        table.row(vec![
            name.to_string(),
            setting.clone(),
            format!("{:.2}", raw as f64 / bytes as f64),
            if rel.max_rel.is_finite() {
                format!("{:.3}", rel.max_rel)
            } else {
                "inf(zeros)".into()
            },
            format!("{:.2e}", abs.avg_abs),
            format!("{:.1}", pwrel_metrics::psnr(&field.data, dec)),
            format!("{ssim:.4}"),
        ]);
    }
    table.print();
    println!("\nimages written to {out_dir}/*.pgm");
    println!("(paper Fig. 4: at CR 7, SZ_T's max pw rel error (~0.15) << FPZIP's (~0.5),");
    println!(" and SZ_ABS distorts the small-value regions the zoom window shows)");
}
