#![forbid(unsafe_code)]
//! Figure 6: parallel data-dumping and data-loading time for NYX on
//! 1,024–4,096 simulated ranks, with SZ_PWR, FPZIP and SZ_T at pw bound
//! 1e-2.
//!
//! Compute is executed and timed on this machine (weak scaling, one rank's
//! shard); I/O comes from the GPFS-style model. Because the paper gives
//! every rank a 3 GB shard and ours is laptop-sized, both the compute time
//! and the I/O volume are scaled by the same factor `3 GB / shard_bytes` —
//! ratios between codecs (the figure's message) are unaffected.

use pwrel_bench::{scale_from_env, PwrCodec, Table};
use pwrel_core::LogBase;
use pwrel_data::nyx;
use pwrel_parallel::{PfsModel, ScalingExperiment, WorkerPool};

fn main() {
    let scale = scale_from_env();
    let ds = nyx::dataset(scale);
    let br = 1e-2;
    let ranks = [1024usize, 2048, 4096];
    let shard_bytes = ds.total_bytes() as f64;
    let volume_scale = 3.0e9 / shard_bytes;

    println!(
        "Figure 6: NYX parallel dump/load, pw bound {br}, shard {:.1} MB scaled to 3 GB/rank\n",
        shard_bytes / 1e6
    );

    let codecs = [
        PwrCodec::SzPwr,
        PwrCodec::Fpzip,
        PwrCodec::SzT(LogBase::Two),
    ];

    // Paper-era GPFS: a few GB/s of aggregate bandwidth shared by all
    // ranks (the paper cites 8 GB/s parallel writes with 32 burst
    // buffers). At 4,096 ranks this makes I/O the bottleneck, the regime
    // Figure 6 is about.
    let pfs = PfsModel {
        write_bw: 5.0e9,
        read_bw: 8.0e9,
        ..PfsModel::default()
    };

    let mut dump_table = Table::new(&[
        "ranks",
        "codec",
        "CR",
        "compress (s)",
        "write (s)",
        "dump total (s)",
    ]);
    let mut load_table = Table::new(&[
        "ranks",
        "codec",
        "read (s)",
        "decompress (s)",
        "load total (s)",
    ]);
    let mut totals: Vec<(String, f64, f64)> = Vec::new();

    for codec in codecs {
        let exp = ScalingExperiment {
            name: "fig6",
            fields: &ds.fields,
            pfs,
            pool: WorkerPool::per_cpu(),
        };
        let (dumps, streams) = exp.dump(&ranks, |f| codec.compress(f, br));
        let loads = exp.load(&ranks, &streams, |s| codec.decompress(s).0.len());
        for (d, l) in dumps.iter().zip(&loads) {
            let compress_s = d.compress_seconds * volume_scale;
            let write_s = exp.pfs.write_time(
                (d.compressed_bytes_per_rank as f64 * volume_scale) as u64 * d.ranks as u64,
                d.ranks,
            );
            let read_s = exp.pfs.read_time(
                (l.compressed_bytes_per_rank as f64 * volume_scale) as u64 * l.ranks as u64,
                l.ranks,
            );
            let decompress_s = l.decompress_seconds * volume_scale;
            dump_table.row(vec![
                d.ranks.to_string(),
                codec.label(),
                format!("{:.2}", d.ratio()),
                format!("{compress_s:.1}"),
                format!("{write_s:.1}"),
                format!("{:.1}", compress_s + write_s),
            ]);
            load_table.row(vec![
                l.ranks.to_string(),
                codec.label(),
                format!("{read_s:.1}"),
                format!("{decompress_s:.1}"),
                format!("{:.1}", read_s + decompress_s),
            ]);
            if d.ranks == 4096 {
                totals.push((codec.label(), compress_s + write_s, read_s + decompress_s));
            }
        }
    }

    println!("data dumping (compression + writing):");
    dump_table.print();
    println!("\ndata loading (reading + decompression):");
    load_table.print();

    let sz_t = totals.iter().find(|t| t.0 == "SZ_T").unwrap();
    println!("\nspeedups of SZ_T at 4096 ranks:");
    for (name, dump, load) in &totals {
        if name != "SZ_T" {
            println!(
                "  vs {name}: {:.2}x dumping, {:.2}x loading",
                dump / sz_t.1,
                load / sz_t.2
            );
        }
    }
    println!("(paper: 1.62x/1.38x dumping and 1.55x/1.31x loading over SZ_PWR/FPZIP at 4k cores)");
}
