#![forbid(unsafe_code)]
//! Emits `BENCH_serve.json`: throughput and request-latency percentiles
//! for the PWRP/1 service (`pwrel-serve`) under 1, 4 and 16 concurrent
//! clients.
//!
//! The server is spawned in-process on an ephemeral port (the same code
//! path as the `pwrel-serve` binary); every client is a real TCP
//! [`pwrel_serve::Client`] issuing compress requests in a closed loop
//! with *think time*: before each request the client sleeps for one
//! measured single-request service time, modelling a remote client that
//! spends as long producing a field as the server spends compressing
//! it. Think time is idle, not CPU, so the model holds even on a
//! single-core host: a lone client leaves the server idle roughly half
//! the wall clock, and 4 concurrent clients fill those gaps — the
//! throughput gain over 1 client is exactly the concurrency the service
//! exists for. Every config moves the same total bytes, so throughputs
//! are directly comparable. Percentiles are exact (the raw per-request
//! samples are sorted), not histogram bucket bounds like the server's
//! own `metrics` response, and exclude the think time.
//!
//! A one-shot bit-identity check runs first: the stream a client gets
//! back must equal `CodecRegistry::compress_stream` called locally with
//! the same codec, bound, dims and chunking — the server adds transport,
//! never bytes.
//!
//! Honours `PWREL_SCALE` (`small`/`medium`/`large`). Flags:
//!
//! - `--smoke`: small field and few requests; finishes in seconds (CI).
//! - `--assert-scaling`: exit non-zero unless 4-client throughput beats
//!   1 client.

use pwrel_bench::scale_from_env;
use pwrel_core::LogBase;
use pwrel_data::{Dims, Scale};
use pwrel_pipeline::{global, CompressOpts, SliceSource};
use pwrel_serve::{Client, CompressHeader, ServeConfig, Server};
use std::time::Instant;

const CODEC: &str = "sz_t";
const BOUND: f64 = 1e-3;
const CLIENT_AXIS: [usize; 3] = [1, 4, 16];

/// Synthesizes one request body: values spanning several decades (the
/// transform codecs' target shape), varied per client and request so no
/// two bodies are byte-identical.
fn make_field(elems: usize, salt: usize) -> Vec<f32> {
    let scale = 1.0 + (salt % 251) as f32 * 1e-3;
    (0..elems)
        .map(|x| {
            let mag = 10f32.powi((x % 7) as i32 - 3);
            (0.1 + ((x as f32) * 0.37).sin().abs()) * mag * scale
        })
        .collect()
}

/// Little-endian body bytes for a field.
fn encode_body(field: &[f32]) -> Vec<u8> {
    let mut body = Vec::with_capacity(field.len() * 4);
    for v in field {
        body.extend_from_slice(&v.to_le_bits_bytes());
    }
    body
}

/// Local trait so the encode loop reads naturally.
trait LeBytes {
    fn to_le_bits_bytes(&self) -> [u8; 4];
}
impl LeBytes for f32 {
    fn to_le_bits_bytes(&self) -> [u8; 4] {
        self.to_bits().to_le_bytes()
    }
}

struct ConfigRow {
    clients: usize,
    requests: usize,
    wall_s: f64,
    mib_s: f64,
    p50_us: u64,
    p99_us: u64,
    mean_us: u64,
    max_us: u64,
}

/// Runs `clients` concurrent client threads, each issuing
/// `reqs_per_client` compress requests. Returns the aggregate row.
fn run_config(
    addr: std::net::SocketAddr,
    clients: usize,
    reqs_per_client: usize,
    dims: Dims,
    chunk_elems: u64,
    think: std::time::Duration,
) -> ConfigRow {
    let barrier = std::sync::Barrier::new(clients + 1);
    let mut samples_us: Vec<u64> = Vec::new();
    let wall_s = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let header = CompressHeader {
                        codec_id: global().by_name(CODEC).unwrap().id(),
                        elem_bits: 32,
                        base: LogBase::Two,
                        bound: BOUND,
                        dims,
                        chunk_elems,
                    };
                    let mut out = Vec::new();
                    let mut lat = Vec::with_capacity(reqs_per_client);
                    barrier.wait();
                    for r in 0..reqs_per_client {
                        let field = make_field(dims.len(), c * 1000 + r);
                        std::thread::sleep(think);
                        let t0 = Instant::now();
                        let body = encode_body(&field);
                        out.clear();
                        let mut src: &[u8] = &body;
                        client
                            .compress_stream(&header, &mut src, &mut out)
                            .expect("compress request");
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            samples_us.extend(h.join().expect("client thread"));
        }
        t0.elapsed().as_secs_f64()
    });

    samples_us.sort_unstable();
    let n = samples_us.len();
    let pct = |q: usize| samples_us[(n * q / 100).min(n - 1)];
    let raw_bytes = (clients * reqs_per_client * dims.len() * 4) as f64;
    ConfigRow {
        clients,
        requests: n,
        wall_s,
        mib_s: raw_bytes / (1 << 20) as f64 / wall_s,
        p50_us: pct(50),
        p99_us: pct(99),
        mean_us: samples_us.iter().sum::<u64>() / n as u64,
        max_us: *samples_us.last().unwrap(),
    }
}

/// The server must add transport, never bytes: a stream fetched through
/// a client equals `compress_stream` run locally with the same
/// parameters.
fn check_bit_identity(addr: std::net::SocketAddr, dims: Dims, chunk_elems: u64) -> bool {
    let field = make_field(dims.len(), 7);
    let mut client = Client::connect(addr).expect("connect");
    let header = CompressHeader {
        codec_id: global().by_name(CODEC).unwrap().id(),
        elem_bits: 32,
        base: LogBase::Two,
        bound: BOUND,
        dims,
        chunk_elems,
    };
    let body = encode_body(&field);
    let mut via_server = Vec::new();
    let mut src: &[u8] = &body;
    client
        .compress_stream(&header, &mut src, &mut via_server)
        .expect("server compress");

    let mut local = Vec::new();
    let mut src = SliceSource::new(&field[..]);
    global()
        .compress_stream::<f32>(
            CODEC,
            &mut src,
            &mut local,
            dims,
            &CompressOpts {
                bound: BOUND,
                base: LogBase::Two,
            },
            chunk_elems as usize,
        )
        .expect("local compress");
    via_server == local
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let assert_scaling = args.iter().any(|a| a == "--assert-scaling");

    let scale = scale_from_env();
    // Every config moves the same total bytes (total_reqs requests split
    // across the clients), so throughputs are directly comparable and
    // the 1-client run is long enough to be stable.
    let (dims, total_reqs) = if smoke {
        (Dims::d3(32, 64, 64), 16)
    } else {
        match scale {
            Scale::Small => (Dims::d3(32, 64, 64), 32),
            Scale::Medium => (Dims::d3(64, 64, 64), 32),
            Scale::Large => (Dims::d3(128, 128, 64), 32),
        }
    };
    let chunk_elems = (dims.len() / 4).max(1) as u64;
    let raw_mb = (dims.len() * 4) >> 20;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The 16-client config must not trip the busy gate: raise the
    // in-flight cap past the axis maximum (recorded in the JSON).
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_inflight: 32,
        ..Default::default()
    };
    let inflight = cfg.max_inflight;
    let workers = cfg.workers;
    let handle = Server::bind(cfg)
        .expect("bind")
        .spawn()
        .expect("spawn server");
    let addr = handle.addr();
    eprintln!(
        "serve bench: {dims} f32 ({raw_mb} MiB/request), {total_reqs} requests/config, \
         server {addr} (workers {workers}, inflight {inflight}), host_cpus {host_cpus}"
    );

    let bit_identical = check_bit_identity(addr, dims, chunk_elems);
    eprintln!(
        "bit identity vs local compress_stream: {}",
        if bit_identical { "ok" } else { "MISMATCH" }
    );

    // Calibrate the think time to one single-request service time: a
    // warmup config with zero think, whose p50 is the service time.
    let warmup = run_config(addr, 1, 4, dims, chunk_elems, std::time::Duration::ZERO);
    let think = std::time::Duration::from_micros(warmup.p50_us);
    eprintln!(
        "calibrated: service p50 {} us -> per-request think time {} us",
        warmup.p50_us, warmup.p50_us
    );

    // Best of a few repeats per config: on a shared host a single run's
    // throughput is scheduler noise; the best run is the capability.
    let repeats = if smoke { 1 } else { 3 };
    let rows: Vec<ConfigRow> = CLIENT_AXIS
        .iter()
        .map(|&clients| {
            let reqs_per_client = (total_reqs / clients).max(1);
            let row = (0..repeats)
                .map(|_| run_config(addr, clients, reqs_per_client, dims, chunk_elems, think))
                .max_by(|a, b| a.mib_s.total_cmp(&b.mib_s))
                .expect("at least one repeat");
            eprintln!(
                "{:>2} clients: {:>7.2} MiB/s over {:.2} s, latency p50 {} us / p99 {} us \
                 ({} requests)",
                row.clients, row.mib_s, row.wall_s, row.p50_us, row.p99_us, row.requests
            );
            row
        })
        .collect();

    let configs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"clients\": {},\n",
                    "      \"requests\": {},\n",
                    "      \"wall_s\": {:.3},\n",
                    "      \"throughput_mib_s\": {:.2},\n",
                    "      \"p50_us\": {},\n",
                    "      \"p99_us\": {},\n",
                    "      \"mean_us\": {},\n",
                    "      \"max_us\": {}\n",
                    "    }}",
                ),
                r.clients, r.requests, r.wall_s, r.mib_s, r.p50_us, r.p99_us, r.mean_us, r.max_us,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"smoke\": {},\n",
            "  \"dims\": \"{}\",\n",
            "  \"elements\": {},\n",
            "  \"dtype\": \"f32\",\n",
            "  \"codec\": \"{}\",\n",
            "  \"rel_bound\": {:e},\n",
            "  \"chunk_elems\": {},\n",
            "  \"total_requests\": {},\n",
            "  \"raw_bytes_per_request\": {},\n",
            "  \"server_workers\": {},\n",
            "  \"server_inflight\": {},\n",
            "  \"think_us\": {},\n",
            "  \"bit_identical\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"configs\": [\n",
            "{}\n",
            "  ]\n",
            "}}\n",
        ),
        scale,
        smoke,
        dims,
        dims.len(),
        CODEC,
        BOUND,
        chunk_elems,
        total_reqs,
        dims.len() * 4,
        workers,
        inflight,
        warmup.p50_us,
        bit_identical,
        host_cpus,
        configs.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");

    drop(handle);

    if !bit_identical {
        eprintln!("bit-identity gate FAILED: server stream differs from local compress_stream");
        std::process::exit(1);
    }
    if assert_scaling {
        let t1 = rows
            .iter()
            .find(|r| r.clients == 1)
            .map(|r| r.mib_s)
            .unwrap();
        let t4 = rows
            .iter()
            .find(|r| r.clients == 4)
            .map(|r| r.mib_s)
            .unwrap();
        if t4 <= t1 {
            eprintln!("scaling gate FAILED: 4 clients {t4:.1} MiB/s <= 1 client {t1:.1} MiB/s");
            std::process::exit(1);
        }
        eprintln!("scaling gate passed: {t1:.1} -> {t4:.1} MiB/s");
    }
}
