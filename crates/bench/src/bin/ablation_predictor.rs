#![forbid(unsafe_code)]
//! Ablation: Lorenzo vs hybrid Lorenzo/regression predictor (SZ 2-style
//! extension) inside SZ_T, across datasets and bounds.
//!
//! Regression helps where blocks have strong gradients and the bound is
//! loose relative to local noise; on the log-transformed scientific fields
//! it should be selected occasionally and never hurt much.

use pwrel_bench::{scale_from_env, timed, Table};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::all_datasets;
use pwrel_sz::SzCompressor;

fn main() {
    let scale = scale_from_env();
    println!("Ablation: SZ_T predictor (Lorenzo vs hybrid +regression)\n");
    let mut table = Table::new(&[
        "dataset",
        "bound",
        "lorenzo CR",
        "hybrid CR",
        "lorenzo ms",
        "hybrid ms",
    ]);
    for ds in all_datasets(scale) {
        for &br in &[1e-3, 1e-1] {
            let lorenzo = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
            let hybrid = PwRelCompressor::new(
                SzCompressor {
                    hybrid_predictor: true,
                    ..SzCompressor::default()
                },
                LogBase::Two,
            );
            let mut raw = 0usize;
            let (mut lb, mut hb) = (0usize, 0usize);
            let (mut lt, mut ht) = (0.0f64, 0.0f64);
            for field in &ds.fields {
                raw += field.nbytes();
                let (s, dt) = timed(|| lorenzo.compress(&field.data, field.dims, br).unwrap());
                lb += s.len();
                lt += dt;
                let (s, dt) = timed(|| hybrid.compress(&field.data, field.dims, br).unwrap());
                hb += s.len();
                ht += dt;
                // Bound must hold through the hybrid path too.
                let dec: Vec<f32> = hybrid.decompress(&s).unwrap();
                for (&a, &b) in field.data.iter().zip(&dec) {
                    assert!(
                        a == 0.0 || ((a as f64 - b as f64) / a as f64).abs() <= br,
                        "{}",
                        field.name
                    );
                }
            }
            table.row(vec![
                ds.name.to_string(),
                format!("{br}"),
                format!("{:.3}", raw as f64 / lb as f64),
                format!("{:.3}", raw as f64 / hb as f64),
                format!("{:.0}", lt * 1e3),
                format!("{:.0}", ht * 1e3),
            ]);
        }
    }
    table.print();
    println!("\n(the hybrid predictor adds per-block model fitting time; it pays off on");
    println!(" gradient-dominated blocks and falls back to Lorenzo elsewhere)");
}
