#![forbid(unsafe_code)]
//! Figure 1: rate distortion (relative-error-based PSNR vs bit rate) of
//! ZFP_T under logarithm bases 2, e and 10, on the two NYX fields.
//!
//! Paper claim (Lemma 4): decorrelation efficiency and coding gain are
//! base-independent, so the three curves coincide.

use pwrel_bench::scale_from_env;
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::nyx;
use pwrel_metrics::{bit_rate, rel_psnr, RateDistortionCurve};
use pwrel_zfp::ZfpCompressor;

fn main() {
    let scale = scale_from_env();
    let bounds = [3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 2e-1];
    let bases = [LogBase::Two, LogBase::E, LogBase::Ten];

    println!("Figure 1: rate distortion of different bases for ZFP_T on 2 fields in NYX\n");
    for field in [nyx::dark_matter_density(scale), nyx::velocity_x(scale)] {
        println!("--- {} ({}) ---", field.name, field.dims);
        println!(
            "{:>10} {:>8} {:>14} {:>14}",
            "base", "br", "bit-rate", "rel-PSNR (dB)"
        );
        let mut curves = Vec::new();
        for &base in &bases {
            let codec = PwRelCompressor::new(ZfpCompressor, base);
            let mut curve = RateDistortionCurve::new(format!("base_{base:?}"));
            for &br in &bounds {
                let bytes = codec.compress(&field.data, field.dims, br).unwrap();
                let dec: Vec<f32> = codec.decompress(&bytes).unwrap();
                let rate = bit_rate(bytes.len(), field.data.len());
                let psnr = rel_psnr(&field.data, &dec);
                println!(
                    "{:>10} {:>8} {:>14.3} {:>14.2}",
                    format!("{base:?}"),
                    br,
                    rate,
                    psnr
                );
                curve.push(rate, psnr);
            }
            curves.push(curve);
        }
        let gap_e = curves[0].max_gap(&curves[1], 32).unwrap_or(f64::NAN);
        let gap_10 = curves[0].max_gap(&curves[2], 32).unwrap_or(f64::NAN);
        println!(
            "max PSNR gap at matched rate: base2-vs-e {gap_e:.2} dB, base2-vs-10 {gap_10:.2} dB"
        );
        println!("(paper: \"different bases make little difference\")\n");
    }
}
