#![forbid(unsafe_code)]
//! Ablation: SZ_PWR's block length.
//!
//! The blockwise PWR mode sets each block's absolute bound from the block's
//! minimum magnitude. Small blocks adapt better (tighter bounds only where
//! needed) but pay more per-block metadata; large blocks amortize metadata
//! but let one tiny value poison many points. Sweeping the block length on
//! spiky HACC data shows the trade-off — and that *no* setting approaches
//! SZ_T, which is the paper's point.

use pwrel_bench::{scale_from_env, Table};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::hacc;
use pwrel_sz::SzCompressor;

fn main() {
    let scale = scale_from_env();
    let field = hacc::velocity(scale, 'x');
    let br = 1e-2;
    println!(
        "Ablation: SZ_PWR block length on {} ({} points, b_r = {br})\n",
        field.name,
        field.data.len()
    );

    let mut table = Table::new(&["block len", "CR", "max rel err"]);
    for block_len in [16usize, 64, 256, 1024, 4096] {
        let sz = SzCompressor {
            pwr_block_len: block_len,
            ..SzCompressor::default()
        };
        let stream = sz.compress_pwr(&field.data, field.dims, br).unwrap();
        let (dec, _) = sz.decompress::<f32>(&stream).unwrap();
        let worst = field
            .data
            .iter()
            .zip(&dec)
            .filter(|(&a, _)| a != 0.0)
            .map(|(&a, &b)| ((a as f64 - b as f64) / a as f64).abs())
            .fold(0.0f64, f64::max);
        table.row(vec![
            block_len.to_string(),
            format!("{:.3}", field.nbytes() as f64 / stream.len() as f64),
            format!("{worst:.3e}"),
        ]);
    }
    table.print();

    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let t_stream = sz_t.compress(&field.data, field.dims, br).unwrap();
    println!(
        "\nSZ_T at the same bound: CR {:.3} — above every PWR block size.",
        field.nbytes() as f64 / t_stream.len() as f64
    );
}
