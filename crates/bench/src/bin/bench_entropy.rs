#![forbid(unsafe_code)]
//! Emits `BENCH_entropy.json`: entropy-stage hot-path throughput for the
//! word-based bitstream engine vs the frozen seed byte-at-a-time engine
//! (`pwrel_bench::baseline`).
//!
//! Two measurements, both on SZ-shaped inputs derived from the Nyx
//! dark-matter-density field:
//!
//! * **Huffman decode** — one serialized `encode_symbols` buffer of
//!   prediction-residual quantization codes, decoded by the live bulk
//!   `decode_symbols` (refill + LUT inner loop) and by the seed per-symbol
//!   `bits_remaining`/`peek_bits`/`skip_bits` decoder. Target ≥ 1.5×.
//! * **ZFP bit-plane encode+decode** — the group-testing plane coder over
//!   negabinary 4×4×4 blocks, through the live `write_bits_lsb`/
//!   `read_bits_lsb` bulk paths and the seed bit-by-bit loops. Both
//!   engines must produce byte-identical streams. Target ≥ 2×.
//!
//! Honours `PWREL_SCALE` (`small|medium|large`, default `medium`) and a
//! `--reps N` flag (default 15; CI smoke passes `--reps 3`).
//!
//! `--gate` switches to regression-gate mode: nothing is written and the
//! process exits non-zero unless the live engine at least matches the
//! frozen seed engine on both hot paths (Huffman decode and ZFP plane
//! encode+decode speedups ≥ 1). The committed-file targets (1.5× / 2×)
//! are quiet-machine numbers; the gate floor of 1× holds on any host
//! because both engines share each rep's scheduler and frequency noise.

use pwrel_bench::baseline::{
    seed_decode_planes, seed_decode_symbols, seed_encode_planes, SeedBitReader, SeedBitWriter,
};
use pwrel_bench::{scale_from_env, timed};
use pwrel_bitstream::{BitReader, BitWriter};
use pwrel_data::nyx;
use pwrel_lossless::huffman;
use pwrel_zfp::nb;

/// Plane-coder parameters matching the transform pipeline's f64 blocks.
const INTPREC: u32 = 64;
/// Low planes dropped, as a lossy bound would.
const KMIN: u32 = 16;

/// SZ-shaped symbol stream: quantized log-domain prediction residuals over
/// the 2^16-code alphabet the SZ stage uses.
fn quantize_residuals(data: &[f32]) -> Vec<u32> {
    let mut prev = 0f32;
    data.iter()
        .map(|&x| {
            let lx = (x.abs() + 1e-6).ln();
            let q = ((lx - prev) * 64.0).round() as i64;
            prev = lx;
            (q + 32768).clamp(0, 65535) as u32
        })
        .collect()
}

/// Negabinary 64-coefficient blocks scaled to ~40 significant planes.
fn negabinary_blocks(data: &[f32]) -> Vec<[u64; 64]> {
    data.chunks_exact(64)
        .map(|c| {
            let mut b = [0u64; 64];
            for (i, &x) in c.iter().enumerate() {
                b[i] = nb::nb_encode((x as f64 * 1048576.0) as i64, INTPREC);
            }
            b
        })
        .collect()
}

struct HuffTimes {
    live_enc_s: f64,
    live_s: f64,
    seed_enc_s: f64,
    seed_s: f64,
}

/// Best-of-`reps` Huffman encode+decode timings. The engines no longer
/// share one buffer: the live engine encodes and decodes the 4-way
/// interleaved format, the frozen seed engine its legacy single-stream
/// format (`encode_symbols_single` is the live encoder's compatibility
/// path, so the seed input is still a valid legacy stream).
fn bench_huffman(syms: &[u32], reps: usize) -> HuffTimes {
    let mut t = HuffTimes {
        live_enc_s: f64::INFINITY,
        live_s: f64::INFINITY,
        seed_enc_s: f64::INFINITY,
        seed_s: f64::INFINITY,
    };
    for _ in 0..reps {
        let (live_buf, live_enc_s) = timed(|| huffman::encode_symbols(syms, 1 << 16));
        let (seed_buf, seed_enc_s) = timed(|| huffman::encode_symbols_single(syms, 1 << 16));
        let (live, live_s) = timed(|| {
            let mut pos = 0;
            huffman::decode_symbols(&live_buf, &mut pos).expect("live decode")
        });
        let (seed, seed_s) = timed(|| {
            let mut pos = 0;
            seed_decode_symbols(&seed_buf, &mut pos).expect("seed decode")
        });
        assert_eq!(live, syms, "live decode diverged");
        assert_eq!(seed, syms, "seed decode diverged");
        t.live_enc_s = t.live_enc_s.min(live_enc_s);
        t.live_s = t.live_s.min(live_s);
        t.seed_enc_s = t.seed_enc_s.min(seed_enc_s);
        t.seed_s = t.seed_s.min(seed_s);
    }
    t
}

struct PlaneTimes {
    live_enc_s: f64,
    live_dec_s: f64,
    seed_enc_s: f64,
    seed_dec_s: f64,
    stream_bytes: usize,
}

/// Best-of-`reps` plane encode+decode timings, live/seed interleaved.
fn bench_planes(blocks: &[[u64; 64]], reps: usize) -> PlaneTimes {
    let mut t = PlaneTimes {
        live_enc_s: f64::INFINITY,
        live_dec_s: f64::INFINITY,
        seed_enc_s: f64::INFINITY,
        seed_dec_s: f64::INFINITY,
        stream_bytes: 0,
    };
    for _ in 0..reps {
        let (live_bytes, live_enc_s) = timed(|| {
            let mut w = BitWriter::new();
            for b in blocks {
                nb::encode_planes(&mut w, b, INTPREC, KMIN);
            }
            w.into_bytes()
        });
        let (seed_bytes, seed_enc_s) = timed(|| {
            let mut w = SeedBitWriter::new();
            for b in blocks {
                seed_encode_planes(&mut w, b, INTPREC, KMIN);
            }
            w.into_bytes()
        });
        assert_eq!(live_bytes, seed_bytes, "engines must be bit-identical");

        let (live_out, live_dec_s) = timed(|| {
            let mut r = BitReader::new(&live_bytes);
            let mut out = vec![[0u64; 64]; blocks.len()];
            for b in out.iter_mut() {
                nb::decode_planes(&mut r, b, INTPREC, KMIN).expect("live decode");
            }
            out
        });
        let (seed_out, seed_dec_s) = timed(|| {
            let mut r = SeedBitReader::new(&seed_bytes);
            let mut out = vec![[0u64; 64]; blocks.len()];
            for b in out.iter_mut() {
                seed_decode_planes(&mut r, b, INTPREC, KMIN).expect("seed decode");
            }
            out
        });
        assert_eq!(live_out, seed_out, "decoders diverged");

        t.live_enc_s = t.live_enc_s.min(live_enc_s);
        t.live_dec_s = t.live_dec_s.min(live_dec_s);
        t.seed_enc_s = t.seed_enc_s.min(seed_enc_s);
        t.seed_dec_s = t.seed_dec_s.min(seed_dec_s);
        t.stream_bytes = live_bytes.len();
    }
    t
}

fn main() {
    let mut reps = 15usize;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--reps") {
        reps = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--reps N");
    }
    let gate = args.iter().any(|a| a == "--gate");

    let scale = scale_from_env();
    let field = nyx::dark_matter_density(scale);

    // Huffman: each engine encodes and decodes its own format (live =
    // interleaved, seed = legacy single stream).
    let syms = quantize_residuals(&field.data);
    let buf = huffman::encode_symbols(&syms, 1 << 16);
    // Warm-up pass pages everything in before timing.
    let _ = bench_huffman(&syms, 1);
    let h = bench_huffman(&syms, reps);

    let blocks = negabinary_blocks(&field.data);
    let _ = bench_planes(&blocks[..blocks.len().min(64)], 1);
    let p = bench_planes(&blocks, reps);

    let msym = |s: f64| syms.len() as f64 / s / 1e6;
    let huff_speedup = h.seed_s / h.live_s;
    let plane_speedup = (p.seed_enc_s + p.seed_dec_s) / (p.live_enc_s + p.live_dec_s);

    if gate {
        let mut failed = false;
        for (what, speedup) in [
            ("huffman decode", huff_speedup),
            ("zfp planes encode+decode", plane_speedup),
        ] {
            eprintln!("gate {what}: {speedup:.2}x vs seed engine");
            if speedup < 1.0 {
                failed = true;
            }
        }
        if failed {
            eprintln!("entropy gate FAILED: live engine slower than the frozen seed engine");
            std::process::exit(1);
        }
        eprintln!("entropy gate passed");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"entropy_hot_paths\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"elements\": {},\n",
            "  \"reps\": {},\n",
            "  \"huffman\": {{\"symbols\": {}, \"stream_bytes\": {}, ",
            "\"seed_encode_s\": {:.6}, \"live_encode_s\": {:.6}, ",
            "\"seed_decode_s\": {:.6}, \"live_decode_s\": {:.6}, ",
            "\"seed_msym_s\": {:.1}, \"live_msym_s\": {:.1}, ",
            "\"speedup_encode\": {:.3}, \"speedup_decode\": {:.3}, ",
            "\"speedup_encode_plus_decode\": {:.3}}},\n",
            "  \"zfp_planes\": {{\"blocks\": {}, \"stream_bytes\": {}, ",
            "\"intprec\": {}, \"kmin\": {}, ",
            "\"seed_encode_s\": {:.6}, \"seed_decode_s\": {:.6}, ",
            "\"live_encode_s\": {:.6}, \"live_decode_s\": {:.6}, ",
            "\"speedup_encode\": {:.3}, \"speedup_decode\": {:.3}, ",
            "\"speedup_encode_plus_decode\": {:.3}}},\n",
            "  \"target_huffman_decode\": 1.5,\n",
            "  \"target_zfp_encode_plus_decode\": 2.0\n",
            "}}\n",
        ),
        field.name,
        scale,
        field.data.len(),
        reps,
        syms.len(),
        buf.len(),
        h.seed_enc_s,
        h.live_enc_s,
        h.seed_s,
        h.live_s,
        msym(h.seed_s),
        msym(h.live_s),
        h.seed_enc_s / h.live_enc_s,
        huff_speedup,
        (h.seed_enc_s + h.seed_s) / (h.live_enc_s + h.live_s),
        blocks.len(),
        p.stream_bytes,
        INTPREC,
        KMIN,
        p.seed_enc_s,
        p.seed_dec_s,
        p.live_enc_s,
        p.live_dec_s,
        p.seed_enc_s / p.live_enc_s,
        p.seed_dec_s / p.live_dec_s,
        plane_speedup,
    );
    print!("{json}");
    std::fs::write("BENCH_entropy.json", &json).expect("write BENCH_entropy.json");
    eprintln!(
        "wrote BENCH_entropy.json (huffman decode {huff_speedup:.2}x, zfp planes {plane_speedup:.2}x)"
    );
}
