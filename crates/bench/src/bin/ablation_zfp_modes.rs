#![forbid(unsafe_code)]
//! Ablation: ZFP's three modes on the same field.
//!
//! Accuracy (absolute bound, conservative), precision (fixed planes per
//! block) and fixed-rate (exact bits per value, ZFP's original mode) trade
//! off differently between guaranteed error, compression ratio and random
//! access. This sweep prints the achieved (rate, max error) pairs per mode.

use pwrel_bench::{scale_from_env, Table};
use pwrel_data::nyx;
use pwrel_metrics::{bit_rate, ErrorStats};
use pwrel_zfp::ZfpCompressor;

fn main() {
    let scale = scale_from_env();
    let field = nyx::dark_matter_density(scale);
    let zfp = ZfpCompressor;
    println!("Ablation: ZFP modes on {} ({})\n", field.name, field.dims);

    let mut table = Table::new(&["mode", "setting", "bits/value", "max abs err", "bounded?"]);

    for tol in [1e-1, 1e-3, 1e-5] {
        let s = zfp.compress_accuracy(&field.data, field.dims, tol).unwrap();
        let (dec, _) = zfp.decompress::<f32>(&s).unwrap();
        let e = ErrorStats::compute(&field.data, &dec);
        table.row(vec![
            "accuracy".into(),
            format!("tol {tol:.0e}"),
            format!("{:.2}", bit_rate(s.len(), field.data.len())),
            format!("{:.2e}", e.max_abs),
            (e.max_abs <= tol).to_string(),
        ]);
    }
    for p in [12u32, 20, 28] {
        let s = zfp.compress_precision(&field.data, field.dims, p).unwrap();
        let (dec, _) = zfp.decompress::<f32>(&s).unwrap();
        let e = ErrorStats::compute(&field.data, &dec);
        table.row(vec![
            "precision".into(),
            format!("-p {p}"),
            format!("{:.2}", bit_rate(s.len(), field.data.len())),
            format!("{:.2e}", e.max_abs),
            "n/a".into(),
        ]);
    }
    for rate in [4u32, 8, 16] {
        let s = zfp.compress_rate(&field.data, field.dims, rate).unwrap();
        let (dec, _) = zfp.decompress::<f32>(&s).unwrap();
        let e = ErrorStats::compute(&field.data, &dec);
        table.row(vec![
            "fixed-rate".into(),
            format!("rate {rate}"),
            format!("{:.2}", bit_rate(s.len(), field.data.len())),
            format!("{:.2e}", e.max_abs),
            "n/a".into(),
        ]);
    }
    table.print();
    println!("\n(accuracy mode always honours its bound but over-preserves — the ZFP_T");
    println!(" behaviour in Table IV; fixed-rate holds bits/value exactly)");
}
