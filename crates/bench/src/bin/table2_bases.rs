#![forbid(unsafe_code)]
//! Table II: compression ratio of different logarithm bases for SZ_T on
//! the two representative NYX fields.
//!
//! Paper claim (Lemma 3 / Theorem 3): base choice changes the ratio by only
//! ~1–3% on average.

use pwrel_bench::{scale_from_env, PwrCodec, Table};
use pwrel_core::LogBase;
use pwrel_data::nyx;
use pwrel_metrics::compression_ratio;

fn main() {
    let scale = scale_from_env();
    let fields = [nyx::dark_matter_density(scale), nyx::velocity_x(scale)];
    let bounds = [1e-4, 1e-3, 1e-2, 0.1, 0.2, 0.3];
    let bases = [LogBase::Two, LogBase::E, LogBase::Ten];

    println!("Table II: compression ratio of different bases for SZ_T on 2 fields in NYX");
    println!("(dims {} per field, scale {scale:?})\n", fields[0].dims);

    let mut table = Table::new(&[
        "pwr bound",
        "dm: base2",
        "dm: base e",
        "dm: base10",
        "vx: base2",
        "vx: base e",
        "vx: base10",
    ]);
    let mut max_spread = 0f64;
    for &br in &bounds {
        let mut cells = vec![format!("{br}")];
        for field in &fields {
            let mut crs = Vec::new();
            for &base in &bases {
                let bytes = PwrCodec::SzT(base).compress(field, br);
                crs.push(compression_ratio(field.nbytes(), bytes.len()));
            }
            let lo = crs.iter().cloned().fold(f64::MAX, f64::min);
            let hi = crs.iter().cloned().fold(f64::MIN, f64::max);
            max_spread = max_spread.max(hi / lo - 1.0);
            cells.extend(crs.iter().map(|c| format!("{c:.3}")));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nmax relative spread across bases: {:.2}% (paper: ~1-3% average impact)",
        max_spread * 100.0
    );
}
