#![forbid(unsafe_code)]
//! Ablation: is Lemma 2's round-off correction necessary?
//!
//! Runs SZ_T with the ε0 guard scaled by 0 (no correction — using
//! `b_a = log(1+b_r)` directly), 1 (the paper's correction) and 2 (ours,
//! also covering inverse-map rounding), on data with a wide dynamic range
//! (large `max|log x|`, where the correction term matters most), and counts
//! bound violations.

use pwrel_bench::Table;
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::{grf, Dims};
use pwrel_sz::SzCompressor;

fn wide_range_data(n: usize) -> Vec<f32> {
    // Smooth field modulated across ~60 decades: |log2 x| reaches ~100.
    let dims = Dims::d1(n);
    let g = grf::gaussian_field(dims, 0xAB1A, 8, 3);
    g.iter()
        .enumerate()
        .map(|(i, &v)| {
            let e = ((i as f64 / n as f64) - 0.5) * 200.0;
            ((1.0 + 0.2 * v as f64) * e.exp2()) as f32
        })
        .collect()
}

fn main() {
    let n = 1 << 20;
    let data = wide_range_data(n);
    let dims = Dims::d1(n);
    let br = 1e-4; // tight bound: the ε0 term is a visible fraction of b'_a

    println!("Ablation: Lemma 2 round-off correction (n = {n}, b_r = {br}, |log2 x| up to ~100)\n");
    let mut table = Table::new(&["guard", "violations", "worst rel err", "CR"]);
    for guard in [0.0, 1.0, 2.0] {
        let mut codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        codec.roundoff_guard = guard;
        let stream = codec.compress(&data, dims, br).unwrap();
        let dec: Vec<f32> = codec.decompress(&stream).unwrap();
        let mut violations = 0usize;
        let mut worst = 0f64;
        for (&a, &b) in data.iter().zip(&dec) {
            let rel = ((a as f64 - b as f64) / a as f64).abs();
            worst = worst.max(rel);
            if rel > br {
                violations += 1;
            }
        }
        table.row(vec![
            format!("{guard}"),
            violations.to_string(),
            format!("{worst:.6e}"),
            format!("{:.3}", (n * 4) as f64 / stream.len() as f64),
        ]);
    }
    table.print();
    println!("\n(guard 0 = no correction; the paper's Lemma 2 uses guard 1. A nonzero");
    println!(" violation count at guard 0 shows the correction is not merely theoretical;");
    println!(" the CR cost of the correction is negligible.)");
}
