#![forbid(unsafe_code)]
//! Table IV: strict error-bound test on the two representative NYX fields.
//!
//! For each compressor and bound b_r ∈ {1e-3, 1e-2, 1e-1}: the fraction of
//! points within the bound, average and maximum point-wise relative error,
//! and compression ratio. Expected shape (paper): FPZIP, SZ_T and ZFP_T are
//! 100% bounded with exact zeros; SZ_PWR approximates zeros (`*`); ZFP_P
//! leaves ~0.1% of points unbounded with enormous max errors.

use pwrel_bench::{scale_from_env, PwrCodec, Table};
use pwrel_core::LogBase;
use pwrel_data::nyx;
use pwrel_metrics::{compression_ratio, RelErrorStats};

fn main() {
    let scale = scale_from_env();
    let fields = [nyx::dark_matter_density(scale), nyx::velocity_x(scale)];
    let roster = [
        PwrCodec::Isabela,
        PwrCodec::Fpzip,
        PwrCodec::SzPwr,
        PwrCodec::SzT(LogBase::Two),
        PwrCodec::ZfpP,
        PwrCodec::ZfpT(LogBase::Two),
    ];

    println!("Table IV: point-wise relative error bound test (scale {scale:?})\n");
    for field in &fields {
        println!("--- {} ({}) ---", field.name, field.dims);
        let mut table = Table::new(&["pwr eb", "name", "bounded", "Avg E", "Max E", "CR"]);
        for &br in &[1e-3, 1e-2, 1e-1] {
            for codec in roster {
                let bytes = codec.compress(field, br);
                let (dec, _) = codec.decompress(&bytes);
                let stats = RelErrorStats::compute(&field.data, &dec, br);
                let star = if stats.broken_zeros > 0 { "*" } else { "" };
                table.row(vec![
                    format!("{br}"),
                    codec.label(),
                    format!("{:.4}%{star}", stats.bounded_fraction * 100.0),
                    format!("{:.2e}", stats.avg_rel),
                    if stats.max_rel.is_finite() {
                        format!("{:.2e}", stats.max_rel)
                    } else {
                        "inf(zeros)".into()
                    },
                    format!("{:.2}", compression_ratio(field.nbytes(), bytes.len())),
                ]);
            }
        }
        table.print();
        println!("(* = compressor modified exact zeros, as the paper marks for SZ_PWR)\n");
    }
}
