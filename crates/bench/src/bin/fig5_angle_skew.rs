#![forbid(unsafe_code)]
//! Figure 5: angle skew of reconstructed HACC velocities when every
//! compressor is tuned to the same compression ratio (8 in the paper).
//!
//! A particle's skew is the angle between its original and reconstructed
//! 3D velocity. Absolute-error-bounded compression lets small-magnitude
//! particles swing wildly; point-wise relative bounds keep directions.
//! Prints per-codec skew statistics and writes a blockwise-average skew
//! map to `target/fig5/`.

use pwrel_bench::{calibrate_to_ratio, scale_from_env, to_grayscale, write_pgm, Table};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::{hacc, Field};
use pwrel_fpzip::FpzipCompressor;
use pwrel_metrics::skew;
use pwrel_sz::SzCompressor;

fn reconstruct_all(
    fields: &[Field<f32>; 3],
    mut compress: impl FnMut(&Field<f32>) -> Vec<u8>,
    decompress: impl Fn(&[u8]) -> Vec<f32>,
) -> ([Vec<f32>; 3], usize) {
    let mut total = 0usize;
    let mut out: Vec<Vec<f32>> = Vec::new();
    for f in fields {
        let stream = compress(f);
        total += stream.len();
        out.push(decompress(&stream));
    }
    let [a, b, c] = <[Vec<f32>; 3]>::try_from(out).unwrap();
    ([a, b, c], total)
}

fn main() {
    let scale = scale_from_env();
    let target_cr = 8.0;
    let fields = [
        hacc::velocity(scale, 'x'),
        hacc::velocity(scale, 'y'),
        hacc::velocity(scale, 'z'),
    ];
    let raw_one = fields[0].nbytes();
    let raw_all = raw_one * 3;
    let out_dir = "target/fig5";
    std::fs::create_dir_all(out_dir).expect("mkdir fig5");

    println!(
        "Figure 5: HACC velocity angle skew at matched CR = {target_cr} ({} particles)\n",
        fields[0].data.len()
    );

    let sz = SzCompressor::default();
    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);

    // Calibrate each codec's parameter on the x component, reuse for y/z.
    let (abs_eb, _) = calibrate_to_ratio(raw_one, target_cr, 1e-3, 1e5, |eb| {
        sz.compress_abs(&fields[0].data, fields[0].dims, eb)
            .unwrap()
    });
    let fpz_p = (10u32..=30)
        .min_by_key(|&p| {
            let s = FpzipCompressor::new(p)
                .compress(&fields[0].data, fields[0].dims)
                .unwrap();
            (((raw_one as f64 / s.len() as f64) - target_cr).abs() * 1e6) as u64
        })
        .unwrap();
    let (szt_br, _) = calibrate_to_ratio(raw_one, target_cr, 1e-6, 0.999, |br| {
        sz_t.compress(&fields[0].data, fields[0].dims, br).unwrap()
    });

    let runs: Vec<(&str, String, [Vec<f32>; 3], usize)> = vec![
        {
            let (dec, bytes) = reconstruct_all(
                &fields,
                |f| sz.compress_abs(&f.data, f.dims, abs_eb).unwrap(),
                |s| sz.decompress::<f32>(s).unwrap().0,
            );
            ("SZ_ABS", format!("abs eb = {abs_eb:.1}"), dec, bytes)
        },
        {
            let fpz = FpzipCompressor::new(fpz_p);
            let (dec, bytes) = reconstruct_all(
                &fields,
                |f| fpz.compress(&f.data, f.dims).unwrap(),
                |s| pwrel_fpzip::decompress::<f32>(s).unwrap().0,
            );
            (
                "FPZIP",
                format!(
                    "-p {fpz_p} (pw rel {:.3})",
                    pwrel_fpzip::rel_bound_for_precision::<f32>(fpz_p)
                ),
                dec,
                bytes,
            )
        },
        {
            let (dec, bytes) = reconstruct_all(
                &fields,
                |f| sz_t.compress(&f.data, f.dims, szt_br).unwrap(),
                |s| sz_t.decompress::<f32>(s).unwrap(),
            );
            ("SZ_T", format!("pw rel = {szt_br:.3}"), dec, bytes)
        },
    ];

    let n = fields[0].data.len();
    let block = (n / 4096).max(1);
    // The paper's maps light up where velocities are small: an absolute
    // bound lets those particles' directions swing. Find the slowest 2%.
    let speeds: Vec<f64> = (0..n)
        .map(|i| {
            let (x, y, z) = (
                fields[0].data[i] as f64,
                fields[1].data[i] as f64,
                fields[2].data[i] as f64,
            );
            (x * x + y * y + z * z).sqrt()
        })
        .collect();
    let mut sorted_speeds = speeds.clone();
    sorted_speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let low_speed_cut = sorted_speeds[n / 50]; // slowest 2% of particles

    let mut table = Table::new(&[
        "codec",
        "setting",
        "CR",
        "mean skew",
        "low-|v| mean",
        "p99 skew",
        "max skew",
    ]);
    let mut low_means = Vec::new();
    for (name, setting, dec, bytes) in &runs {
        let skews = skew::per_particle_skew(
            &fields[0].data,
            &fields[1].data,
            &fields[2].data,
            &dec[0],
            &dec[1],
            &dec[2],
        );
        let blocks = skew::blockwise_skew(&skews, block);
        let mut sorted = skews.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = skews.iter().sum::<f64>() / skews.len() as f64;
        let (mut low_sum, mut low_n) = (0.0f64, 0usize);
        for (s, &sp) in skews.iter().zip(&speeds) {
            if sp <= low_speed_cut {
                low_sum += s;
                low_n += 1;
            }
        }
        let low_mean = low_sum / low_n as f64;
        low_means.push(low_mean);
        table.row(vec![
            name.to_string(),
            setting.clone(),
            format!("{:.2}", raw_all as f64 / *bytes as f64),
            format!("{mean:.3}°"),
            format!("{low_mean:.3}°"),
            format!("{:.3}°", sorted[(sorted.len() * 99) / 100]),
            format!("{:.2}°", sorted[sorted.len() - 1]),
        ]);

        // Blockwise skew map as a square-ish grayscale image.
        let w = (blocks.len() as f64).sqrt().ceil() as usize;
        let h = blocks.len().div_ceil(w);
        let mut px: Vec<f32> = blocks.iter().map(|&s| s as f32).collect();
        px.resize(w * h, 0.0);
        write_pgm(
            &format!("{out_dir}/{}_skew.pgm", name.to_lowercase()),
            w,
            h,
            &to_grayscale(&px, 0.0, 10.0),
        )
        .unwrap();
    }
    table.print();
    println!("\nblock skew maps written to {out_dir}/*.pgm (brighter = more distorted)");
    println!(
        "(paper Fig. 5: in the low-velocity regions that light up the maps, SZ_ABS\n\
         skews ≳6°, FPZIP ≈4°, SZ_T ≈2°; low-|v| ordering here: {})",
        if low_means[0] > low_means[1] && low_means[1] > low_means[2] {
            "reproduced"
        } else {
            "CHECK ORDERING"
        }
    );
}
