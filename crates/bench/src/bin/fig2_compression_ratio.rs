#![forbid(unsafe_code)]
//! Figure 2: compression ratio vs point-wise relative error bound, for all
//! four application datasets and five compressors.
//!
//! Expected shape: SZ_T wins nearly everywhere; SZ_PWR degrades at loose
//! bounds and on spiky HACC; FPZIP strong but stepwise; ISABELA lowest;
//! ZFP_T modest (over-preserved bounds).

use pwrel_bench::{scale_from_env, PwrCodec, Table, FIG2_ROSTER};
use pwrel_data::{all_datasets, Dataset};
use pwrel_metrics::compression_ratio;

fn dataset_cr(ds: &Dataset, codec: PwrCodec, br: f64) -> f64 {
    // Aggregate CR over all fields: total raw bytes / total compressed.
    let mut raw = 0usize;
    let mut comp = 0usize;
    for field in &ds.fields {
        raw += field.nbytes();
        comp += codec.compress(field, br).len();
    }
    compression_ratio(raw, comp)
}

fn main() {
    let scale = scale_from_env();
    let bounds = [1e-4, 1e-3, 1e-2, 1e-1];

    println!("Figure 2: compression ratio vs point-wise relative error bound (scale {scale:?})\n");
    for ds in all_datasets(scale) {
        println!(
            "--- {} ({} fields, {:.1} MB raw) ---",
            ds.name,
            ds.fields.len(),
            ds.total_bytes() as f64 / 1e6
        );
        let mut table = Table::new(&["codec", "1e-4", "1e-3", "1e-2", "1e-1"]);
        let mut best_at_each: Vec<(f64, String)> = vec![(0.0, String::new()); bounds.len()];
        for codec in FIG2_ROSTER {
            let mut cells = vec![codec.label()];
            for (bi, &br) in bounds.iter().enumerate() {
                let cr = dataset_cr(&ds, codec, br);
                if cr > best_at_each[bi].0 {
                    best_at_each[bi] = (cr, codec.label());
                }
                cells.push(format!("{cr:.2}"));
            }
            table.row(cells);
        }
        table.print();
        let winners: Vec<&str> = best_at_each.iter().map(|(_, l)| l.as_str()).collect();
        println!("best per bound: {winners:?}\n");
    }
    println!("(paper Fig. 2: SZ_T almost always on top; ISABELA lowest)");
}
