#![forbid(unsafe_code)]
//! Emits `BENCH_streaming.json`: wall-clock and peak-memory numbers for
//! the chunk-pipelined out-of-core path (`pwrel_parallel::ChunkedCodec`
//! over framed streams) at 1, 2 and 4 workers.
//!
//! The input field is *never materialized*: a template-chunk source
//! synthesizes each chunk on demand (one chunk-sized template, scaled
//! per slab so frames differ), the framed stream goes to a temp file,
//! and decompression drains into a counting sink. Peak memory is read
//! from `/proc/self/status` `VmHWM` as a delta against a baseline taken
//! before any streaming work. `VmHWM` is monotonic over the process
//! lifetime, so the gated compress runs come first, in increasing
//! window order — each one's high-water delta must stay within
//! `4 x chunk_bytes x window`. The bench runs a four-chunks-per-worker
//! window (deeper read-ahead than `ChunkedCodec::new`'s default two):
//! the budget's 4x-per-slot allowance then covers the raw chunk per
//! slot plus the per-worker codec scratch — SZ's fused sweep keeps a
//! quantized-code array and a running reconstruction, about 6x the
//! chunk per *active* task, amortized over the >= 4 slots per worker —
//! plus payload lag and allocator slack. The decompress runs follow,
//! timed and recorded but not gated: the bounded-memory acceptance
//! criterion is on streaming *compress*.
//!
//! Honours `PWREL_SCALE` (`small` 64^3 / `medium` 128^3 / `large` 512^3
//! f32, the issue's ~0.5 GiB scale). Flags:
//!
//! - `--assert-rss`: exit non-zero if any compress run exceeds its
//!   memory budget (CI smoke runs this at small scale).
//! - `--assert-scaling`: exit non-zero unless 4-worker compress
//!   throughput beats 1-worker. Only meaningful on a multi-core host —
//!   the JSON records `host_cpus` so readers can judge the numbers.

use pwrel_bench::{scale_from_env, timed};
use pwrel_data::{CodecError, Dims, Scale};
use pwrel_parallel::{ChunkedCodec, WorkerPool};
use pwrel_pipeline::{global, ChunkSource, CompressOpts, StreamStats, WriteSink};

/// Synthesizes the field chunk by chunk from one template chunk: values
/// span several decades (the transform codecs' target shape) and each
/// slab is scaled by its index so no two frames are byte-identical.
struct TemplateSource {
    template: Vec<f32>,
    pos: usize,
}

impl TemplateSource {
    fn new(chunk_elems: usize) -> Self {
        let template = (0..chunk_elems)
            .map(|x| {
                let mag = 10f32.powi((x % 7) as i32 - 3);
                (0.1 + ((x as f32) * 0.37).sin().abs()) * mag
            })
            .collect();
        Self { template, pos: 0 }
    }
}

impl ChunkSource<f32> for TemplateSource {
    fn next_chunk(&mut self, n: usize, buf: &mut Vec<f32>) -> Result<(), CodecError> {
        buf.clear();
        buf.reserve(n);
        for k in 0..n {
            let i = self.pos + k;
            let scale = 1.0 + (i / self.template.len()) as f32 * 1e-3;
            buf.push(self.template[i % self.template.len()] * scale);
        }
        self.pos += n;
        Ok(())
    }
}

/// Counts decoded bytes without keeping them.
#[derive(Default)]
struct CountingWriter {
    bytes: u64,
}

impl std::io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The process peak resident set (`VmHWM`) in kB, from
/// `/proc/self/status`.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().strip_suffix("kB"))
        .and_then(|l| l.trim().parse().ok())
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let assert_rss = args.iter().any(|a| a == "--assert-rss");
    let assert_scaling = args.iter().any(|a| a == "--assert-scaling");

    let scale = scale_from_env();
    // Slab-aligned chunks: whole slices of the slowest axis.
    let (dims, chunk_elems) = match scale {
        Scale::Small => (Dims::d3(64, 64, 64), 16 * 64 * 64),
        Scale::Medium => (Dims::d3(128, 128, 128), 16 * 128 * 128),
        Scale::Large => (Dims::d3(512, 512, 512), 8 * 512 * 512),
    };
    let chunk_bytes = chunk_elems * 4;
    let raw_bytes = dims.len() * 4;
    let raw_mb = raw_bytes as f64 / (1 << 20) as f64;
    let bound = 1e-3;
    let opts = CompressOpts::rel(bound);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stream_path = std::env::temp_dir().join("pwrel_bench_streaming.pws");
    let workers_axis = [1usize, 2, 4];

    let baseline_kb = vm_hwm_kb();
    eprintln!(
        "streaming bench: {dims} f32 ({raw_mb:.0} MiB), chunk {chunk_elems} elems \
         ({} MiB), host_cpus {host_cpus}, baseline VmHWM {baseline_kb} kB",
        chunk_bytes >> 20,
    );

    // Gated compress runs first: VmHWM only grows, and so do the
    // budgets, so each run is checked against its own window's budget.
    let mut rss_failed = false;
    let mut compress_rows = Vec::new();
    let mut last_stats: Option<StreamStats> = None;
    for workers in workers_axis {
        let mut chunked = ChunkedCodec::new(WorkerPool::new(workers), chunk_elems);
        // Four in-flight chunks per worker (see module docs).
        chunked.window = workers * 4;
        let window = chunked.window;
        let budget_kb = (4 * chunk_bytes * window / 1024) as u64;

        let mut src = TemplateSource::new(chunk_elems);
        let mut out = std::io::BufWriter::new(
            std::fs::File::create(&stream_path).expect("create temp stream"),
        );
        let (stats, secs) = timed(|| {
            let stats = chunked
                .compress_stream::<f32>(global(), "sz_t", &mut src, &mut out, dims, &opts)
                .expect("streaming compress");
            use std::io::Write;
            out.flush().expect("flush temp stream");
            stats
        });

        let hwm_delta_kb = vm_hwm_kb().saturating_sub(baseline_kb);
        let within = hwm_delta_kb <= budget_kb;
        rss_failed |= !within;
        let mib_s = raw_mb / secs;
        eprintln!(
            "compress, {workers} workers (window {window}): {secs:.2} s ({mib_s:.1} MiB/s), \
             ratio {:.2}x, peak RSS delta {hwm_delta_kb} kB vs budget {budget_kb} kB [{}]",
            raw_bytes as f64 / stats.bytes_out as f64,
            if within { "ok" } else { "OVER" },
        );
        compress_rows.push((
            workers,
            window,
            secs,
            mib_s,
            budget_kb,
            hwm_delta_kb,
            within,
        ));
        last_stats = Some(stats);
    }
    let stats = last_stats.expect("at least one compress run");

    // Decompress runs: timed and recorded, not RSS-gated (see module
    // docs). Every run decodes the same stream — the framed format is
    // deterministic across worker counts.
    let mut decompress_rows = Vec::new();
    for workers in workers_axis {
        let mut chunked = ChunkedCodec::new(WorkerPool::new(workers), chunk_elems);
        chunked.window = workers * 4;
        let mut input =
            std::io::BufReader::new(std::fs::File::open(&stream_path).expect("open temp stream"));
        let mut sink: WriteSink<CountingWriter> = WriteSink::new(CountingWriter::default());
        let ((header, _), secs) = timed(|| {
            chunked
                .decompress_stream::<f32>(global(), &mut input, &mut sink)
                .expect("streaming decompress")
        });
        assert_eq!(header.dims, dims);
        assert_eq!(
            sink.into_inner().bytes,
            raw_bytes as u64,
            "round trip lost bytes"
        );
        let mib_s = raw_mb / secs;
        eprintln!(
            "decompress, {workers} workers (window {}): {secs:.2} s ({mib_s:.1} MiB/s)",
            chunked.window,
        );
        decompress_rows.push((workers, chunked.window, secs, mib_s));
    }
    let _ = std::fs::remove_file(&stream_path);

    let configs: Vec<String> = compress_rows
        .iter()
        .zip(&decompress_rows)
        .map(
            |(&(workers, window, cs, cmb, budget_kb, delta_kb, within), &(_, _, ds, dmb))| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"workers\": {},\n",
                        "      \"window\": {},\n",
                        "      \"compress_s\": {:.3},\n",
                        "      \"compress_mib_s\": {:.2},\n",
                        "      \"decompress_s\": {:.3},\n",
                        "      \"decompress_mib_s\": {:.2},\n",
                        "      \"rss_budget_kb\": {},\n",
                        "      \"compress_peak_rss_delta_kb\": {},\n",
                        "      \"rss_within_budget\": {}\n",
                        "    }}",
                    ),
                    workers, window, cs, cmb, ds, dmb, budget_kb, delta_kb, within,
                )
            },
        )
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"streaming\",\n",
            "  \"scale\": \"{:?}\",\n",
            "  \"dims\": \"{}\",\n",
            "  \"elements\": {},\n",
            "  \"dtype\": \"f32\",\n",
            "  \"rel_bound\": {:e},\n",
            "  \"codec\": \"sz_t\",\n",
            "  \"chunk_elems\": {},\n",
            "  \"chunk_bytes\": {},\n",
            "  \"chunks\": {},\n",
            "  \"bytes_out\": {},\n",
            "  \"ratio\": {:.3},\n",
            "  \"host_cpus\": {},\n",
            "  \"baseline_hwm_kb\": {},\n",
            "  \"configs\": [\n",
            "{}\n",
            "  ]\n",
            "}}\n",
        ),
        scale,
        dims,
        dims.len(),
        bound,
        chunk_elems,
        chunk_bytes,
        stats.chunks,
        stats.bytes_out,
        raw_bytes as f64 / stats.bytes_out as f64,
        host_cpus,
        baseline_kb,
        configs.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_streaming.json", &json).expect("write BENCH_streaming.json");
    eprintln!("wrote BENCH_streaming.json");

    if assert_rss && rss_failed {
        eprintln!("rss gate FAILED: streaming compress peak RSS exceeded 4 x chunk_bytes x window");
        std::process::exit(1);
    }
    if assert_scaling {
        let t1 = compress_rows
            .iter()
            .find(|r| r.0 == 1)
            .map(|r| r.3)
            .unwrap();
        let t4 = compress_rows
            .iter()
            .find(|r| r.0 == 4)
            .map(|r| r.3)
            .unwrap();
        if t4 <= t1 {
            eprintln!("scaling gate FAILED: 4-worker {t4:.1} MiB/s <= 1-worker {t1:.1} MiB/s");
            std::process::exit(1);
        }
        eprintln!("scaling gate passed: {t1:.1} -> {t4:.1} MiB/s");
    }
}
