//! Lane-batched sweep/lift kernels vs their per-point references.
//!
//! The acceptance targets for the batched kernel work: the Lorenzo
//! predict + quantize sweep and the fused block lift must beat the
//! per-point reference paths they dispatch over (`PWREL_SWEEP` /
//! `PWREL_LIFT` select the reference at runtime; here both variants are
//! called directly so one process measures both). The `bench_stages`
//! binary attributes the same kernels inside the full codecs; this bench
//! is the isolated view.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pwrel_data::{nyx, Scale};
use pwrel_kernels::{blocklift, predict};
use pwrel_zfp::lift;

/// One Lorenzo + linear-scaling quantization sweep over the field,
/// exercising the same sink the SZ engine uses (codes + reconstruction
/// feedback), without the entropy stages. The sink stays a concrete
/// closure (no `dyn`) so the kernels see exactly the monomorphized shape
/// the engine compiles.
fn sweep_once(data: &[f32], dims: pwrel_data::Dims, batched: bool) -> usize {
    let quant = predict::QuantKernel::new(65536);
    let eb = 1e-3;
    // Index-addressed, per the sweep's visit-order contract (the wavefront
    // interleaves rows).
    let mut codes: Vec<u32> = vec![0u32; data.len()];
    let mut dec = vec![0f32; data.len()];
    let mut sink = |idx: usize, pred: f64| -> Result<f32, std::convert::Infallible> {
        Ok(match quant.quantize(data[idx], pred, eb) {
            Some((code, val)) => {
                codes[idx] = code;
                val
            }
            None => data[idx],
        })
    };
    let res = if batched {
        predict::sweep(dims, &mut dec, &mut sink)
    } else {
        predict::sweep_reference(dims, &mut dec, &mut sink)
    };
    match res {
        Ok(()) => codes.len(),
        Err(e) => match e {},
    }
}

fn bench_sweep(c: &mut Criterion) {
    let field = nyx::dark_matter_density(Scale::Medium);
    let nbytes = (field.data.len() * 4) as u64;

    let mut group = c.benchmark_group("sweep_predict_quantize");
    group.throughput(Throughput::Bytes(nbytes));
    group.sample_size(20);
    group.bench_function("batched", |b| {
        b.iter(|| sweep_once(&field.data, field.dims, true));
    });
    group.bench_function("reference", |b| {
        b.iter(|| sweep_once(&field.data, field.dims, false));
    });
    group.finish();
}

fn bench_lift(c: &mut Criterion) {
    // A batch of 4^3 blocks with deterministic pseudo-random coefficients,
    // sized like one Medium-grid plane worth of blocks.
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let blocks: Vec<[i64; 64]> = (0..256)
        .map(|_| {
            let mut b = [0i64; 64];
            for v in &mut b {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = (x as i64) >> 3;
            }
            b
        })
        .collect();
    let nbytes = (blocks.len() * 64 * 8) as u64;

    let mut group = c.benchmark_group("blocklift_fwd_inv_3d");
    group.throughput(Throughput::Bytes(nbytes));
    group.bench_function("fused", |b| {
        b.iter(|| {
            let mut work = blocks.clone();
            for blk in &mut work {
                blocklift::fwd_xform_3d(blk);
                blocklift::inv_xform_3d(blk);
            }
            work
        });
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut work = blocks.clone();
            for blk in &mut work {
                lift::fwd_xform_reference(blk, 3);
                lift::inv_xform_reference(blk, 3);
            }
            work
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_lift);
criterion_main!(benches);
