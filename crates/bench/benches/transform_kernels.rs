//! Fast batched log/exp kernels vs the scalar libm baseline, per phase.
//!
//! The acceptance target for the kernel work: the f64 base-2 forward +
//! inverse transform must run ≥ 1.5× faster with `Kernel::Fast` than with
//! `Kernel::Libm`. The `bench_transform` binary emits the same comparison
//! as `BENCH_transform.json`; this bench is the interactive view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pwrel_core::{transform, Kernel, LogBase};
use pwrel_data::{nyx, Scale};

fn bench_kernels(c: &mut Criterion) {
    let field = nyx::dark_matter_density(Scale::Medium);
    let data: Vec<f64> = field.data.iter().map(|&x| x as f64).collect();
    let nbytes = (data.len() * 8) as u64;
    let br = 1e-3;
    let base = LogBase::Two;

    let mut group = c.benchmark_group("transform_kernel_forward");
    group.throughput(Throughput::Bytes(nbytes));
    group.sample_size(20);
    for kernel in [Kernel::Fast, Kernel::Libm] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &kernel,
            |b, &kernel| {
                b.iter(|| transform::forward_with_kernel(&data, base, br, 2.0, kernel).unwrap());
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("transform_kernel_inverse");
    group.throughput(Throughput::Bytes(nbytes));
    group.sample_size(20);
    for kernel in [Kernel::Fast, Kernel::Libm] {
        let t = transform::forward_with_kernel(&data, base, br, 2.0, kernel).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    transform::inverse_with_kernel(
                        &t.mapped,
                        base,
                        t.zero_threshold,
                        t.sign_section.as_deref(),
                        kernel,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
