//! Worker-pool scaling: per-rank SZ_T compression throughput as the thread
//! count grows (the compute phase of the Figure 6 experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::{nyx, Scale};
use pwrel_parallel::WorkerPool;
use pwrel_sz::SzCompressor;

fn bench_pool(c: &mut Criterion) {
    let ds = nyx::dataset(Scale::Medium);
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let total = ds.total_bytes() as u64;

    let mut group = c.benchmark_group("shard_compress");
    group.throughput(Throughput::Bytes(total));
    group.sample_size(10);
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, 8];
    counts.retain(|&w| w <= max_workers.max(1));
    if counts.is_empty() {
        counts.push(1);
    }
    for workers in counts {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let pool = WorkerPool::new(workers);
                b.iter(|| {
                    pool.map(ds.fields.iter().collect(), |f| {
                        codec.compress(&f.data, f.dims, 1e-2).unwrap().len()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
