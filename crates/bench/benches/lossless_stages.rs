//! Microbenchmarks of the lossless substrates (SZ stage II/III analogues):
//! canonical Huffman over quantization-code-like symbols, the LZ pass, and
//! sign-bitmap RLE.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pwrel_lossless::{huffman, lz, rle};

/// Symbols shaped like SZ quantization codes: tightly clustered around the
/// radius with occasional outliers.
fn quant_codes(n: usize) -> Vec<u32> {
    let mut x = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let spread = (x % 100) as i64;
            let offset = if spread < 90 {
                (x % 7) as i64 - 3
            } else {
                (x % 2000) as i64 - 1000
            };
            (32768 + offset) as u32
        })
        .collect()
}

fn bench_lossless(c: &mut Criterion) {
    let n = 1 << 20;
    let codes = quant_codes(n);

    let mut group = c.benchmark_group("huffman");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("encode_1M_codes", |b| {
        b.iter(|| huffman::encode_symbols(&codes, 65536));
    });
    let encoded = huffman::encode_symbols(&codes, 65536);
    group.bench_function("decode_1M_codes", |b| {
        b.iter(|| {
            let mut pos = 0;
            huffman::decode_symbols(&encoded, &mut pos).unwrap()
        });
    });
    group.finish();

    let payload: Vec<u8> = encoded.iter().cycle().take(1 << 20).copied().collect();
    let mut group = c.benchmark_group("lz");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.sample_size(10);
    group.bench_function("compress_1MiB", |b| {
        b.iter(|| lz::compress(&payload));
    });
    let packed = lz::compress(&payload);
    group.bench_function("decompress_1MiB", |b| {
        b.iter(|| lz::decompress(&packed).unwrap());
    });
    group.finish();

    // Sign-plane-like bitmap: long runs with occasional flips.
    let bits: Vec<bool> = (0..1usize << 20).map(|i| (i / 977) % 2 == 0).collect();
    let mut group = c.benchmark_group("rle");
    group.throughput(Throughput::Elements(bits.len() as u64));
    group.sample_size(10);
    group.bench_function("compress_1M_bits", |b| {
        b.iter(|| rle::compress_bits(&bits));
    });
    group.finish();
}

criterion_group!(benches, bench_lossless);
criterion_main!(benches);
