//! Criterion companion to Table III: the forward (pre-processing) and
//! inverse (post-processing) log transforms per base.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pwrel_core::{transform, LogBase};
use pwrel_data::{nyx, Scale};

fn bench_transform(c: &mut Criterion) {
    let field = nyx::dark_matter_density(Scale::Medium);
    let nbytes = field.nbytes() as u64;
    let br = 1e-3;

    let mut group = c.benchmark_group("transform_forward");
    group.throughput(Throughput::Bytes(nbytes));
    group.sample_size(20);
    for base in [LogBase::Two, LogBase::E, LogBase::Ten] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{base:?}")),
            &base,
            |b, &base| {
                b.iter(|| transform::forward(&field.data, base, br, 2.0).unwrap());
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("transform_inverse");
    group.throughput(Throughput::Bytes(nbytes));
    group.sample_size(20);
    for base in [LogBase::Two, LogBase::E, LogBase::Ten] {
        let t = transform::forward(&field.data, base, br, 2.0).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{base:?}")),
            &base,
            |b, &base| {
                b.iter(|| {
                    transform::inverse(&t.mapped, base, t.zero_threshold, t.sign_section.as_deref())
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
