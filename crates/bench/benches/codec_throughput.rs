//! Criterion companion to Figure 3: compression / decompression throughput
//! of every point-wise-relative codec on a NYX field at b_r = 1e-2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pwrel_bench::PwrCodec;
use pwrel_core::LogBase;
use pwrel_data::{nyx, Scale};

fn bench_codecs(c: &mut Criterion) {
    let field = nyx::dark_matter_density(Scale::Medium);
    let br = 1e-2;
    let roster = [
        PwrCodec::SzPwr,
        PwrCodec::Fpzip,
        PwrCodec::Isabela,
        PwrCodec::ZfpT(LogBase::Two),
        PwrCodec::SzT(LogBase::Two),
        PwrCodec::ZfpP,
    ];

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(field.nbytes() as u64));
    group.sample_size(10);
    for codec in roster {
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.label()),
            &codec,
            |b, codec| {
                b.iter(|| codec.compress(&field, br));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(field.nbytes() as u64));
    group.sample_size(10);
    for codec in roster {
        let stream = codec.compress(&field, br);
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.label()),
            &codec,
            |b, codec| {
                b.iter(|| codec.decompress(&stream));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
