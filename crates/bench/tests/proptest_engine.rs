//! Property tests: the word-based accumulator engine agrees with the
//! frozen seed byte-at-a-time engine (`pwrel_bench::baseline`) on random
//! write programs — byte-identical output streams, identical read-back,
//! including the LSB-first ZFP paths and peek/skip sequences.

use proptest::prelude::*;
use pwrel_bench::baseline::{SeedBitReader, SeedBitWriter};
use pwrel_bitstream::{BitReader, BitWriter};

/// One write operation in a random program.
#[derive(Debug, Clone)]
enum Op {
    Bit(bool),
    Bits(u64, u32),
    BitsLsb(u64, u32),
    Align,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<bool>().prop_map(Op::Bit),
        (any::<u64>(), 0u32..=64).prop_map(|(v, n)| Op::Bits(v, n)),
        (any::<u64>(), 0u32..=64).prop_map(|(v, n)| Op::BitsLsb(v, n)),
        Just(Op::Align),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The two writers emit byte-identical streams, and both readers
    // recover the same values from them.
    #[test]
    fn engines_agree_on_random_programs(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut live = BitWriter::new();
        let mut seed = SeedBitWriter::new();
        for op in &ops {
            match *op {
                Op::Bit(b) => {
                    live.write_bit(b);
                    seed.write_bit(b);
                }
                Op::Bits(v, n) => {
                    live.write_bits(v, n);
                    seed.write_bits(v, n);
                }
                Op::BitsLsb(v, n) => {
                    live.write_bits_lsb(v, n);
                    seed.write_bits_lsb(v, n);
                }
                Op::Align => {
                    live.align_byte();
                    seed.align_byte();
                }
            }
        }
        prop_assert_eq!(live.bit_len(), seed.bit_len());
        let live_bytes = live.into_bytes();
        let seed_bytes = seed.into_bytes();
        prop_assert_eq!(&live_bytes, &seed_bytes);

        let mut lr = BitReader::new(&live_bytes);
        let mut sr = SeedBitReader::new(&seed_bytes);
        for op in &ops {
            match *op {
                Op::Bit(_) => prop_assert_eq!(lr.read_bit().unwrap(), sr.read_bit().unwrap()),
                Op::Bits(_, n) => {
                    prop_assert_eq!(lr.read_bits(n).unwrap(), sr.read_bits(n).unwrap());
                }
                Op::BitsLsb(_, n) => {
                    prop_assert_eq!(lr.read_bits_lsb(n).unwrap(), sr.read_bits_lsb(n).unwrap());
                }
                Op::Align => {
                    lr.align_byte();
                    // Seed reader has no align; skip to the same boundary.
                    let off = (sr.bits_read() % 8) as u32;
                    if off > 0 {
                        sr.skip_bits(8 - off).unwrap();
                    }
                }
            }
            prop_assert_eq!(lr.bits_read(), sr.bits_read());
        }
    }

    // peek/skip walks agree between the engines (the live peek refills
    // from a single unaligned word load; the seed loops over bytes).
    #[test]
    fn peek_skip_walks_agree(
        bytes in prop::collection::vec(any::<u8>(), 1..64),
        widths in prop::collection::vec(1u32..=32, 1..64),
    ) {
        let mut lr = BitReader::new(&bytes);
        let mut sr = SeedBitReader::new(&bytes);
        for &n in &widths {
            if sr.bits_remaining() < n as u64 {
                prop_assert!(lr.peek_bits(n).is_err());
                break;
            }
            prop_assert_eq!(lr.peek_bits(n).unwrap(), sr.peek_bits(n).unwrap());
            // Peeking must not advance either cursor.
            prop_assert_eq!(lr.peek_bits(n).unwrap(), sr.peek_bits(n).unwrap());
            lr.skip_bits(n).unwrap();
            sr.skip_bits(n).unwrap();
            prop_assert_eq!(lr.bits_read(), sr.bits_read());
        }
    }
}
