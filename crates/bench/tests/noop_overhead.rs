//! Guards the observability layer's zero-cost claim: compressing with the
//! no-op recorder must stay within 2% of the untraced path on a
//! Medium-scale dataset. Every span and counter site is gated on
//! `Recorder::is_enabled`, so the traced entry points reduce to a handful
//! of predictable branches when recording is off.
//!
//! Timing test: uses best-of-N with the two variants interleaved in every
//! rep so frequency drift and scheduler noise land on both sides equally.

use pwrel_data::{nyx, Scale};
use pwrel_pipeline::{global, CompressOpts};
use std::time::Instant;

fn secs(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

#[test]
fn noop_recorder_overhead_under_two_percent() {
    let field = nyx::dark_matter_density(Scale::Medium);
    let opts = CompressOpts::rel(1e-3);
    let r = global();
    let noop = pwrel_trace::noop();

    // Warm-up: page the dataset in and fill the allocator caches.
    r.compress("sz_t", &field.data, field.dims, &opts).unwrap();

    let reps = 12;
    let mut plain = f64::INFINITY;
    let mut traced = f64::INFINITY;
    for _ in 0..reps {
        plain = plain.min(secs(|| {
            r.compress("sz_t", &field.data, field.dims, &opts).unwrap();
        }));
        traced = traced.min(secs(|| {
            r.compress_traced("sz_t", &field.data, field.dims, &opts, noop)
                .unwrap();
        }));
    }

    let ratio = traced / plain;
    assert!(
        ratio < 1.02,
        "no-op traced compress is {:.1}% slower than plain \
         (plain {plain:.6}s, traced {traced:.6}s)",
        (ratio - 1.0) * 100.0
    );
}
