//! Property tests: the point-wise relative bound survives the full
//! forward → worst-case-perturbation → inverse pipeline for every base and
//! both kernels, over random fields mixing signs, zeros, subnormals, and
//! extreme magnitudes.

use proptest::prelude::*;
use pwrel_core::transform::{forward_with_kernel, inverse_with_kernel};
use pwrel_core::{Kernel, LogBase};

const BASES: [LogBase; 3] = [LogBase::Two, LogBase::E, LogBase::Ten];
const KERNELS: [Kernel; 2] = [Kernel::Fast, Kernel::Libm];

/// A random finite `f32`: any bit pattern, with non-finite patterns folded
/// to zero (which the transform must handle exactly anyway). Covers
/// subnormals, both signs, zeros, and the full exponent range.
fn any_value() -> impl Strategy<Value = f32> {
    prop_oneof![
        6 => any::<u32>().prop_map(|b| {
            let x = f32::from_bits(b);
            if x.is_finite() { x } else { 0.0 }
        }),
        1 => Just(0.0f32),
        1 => Just(-0.0f32),
        1 => Just(f32::MIN_POSITIVE / 8.0),
        1 => Just(-f32::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bound_holds_end_to_end_for_every_base_and_kernel(
        data in prop::collection::vec(any_value(), 1..300),
        br_exp in 1u32..4,
    ) {
        let br = 10f64.powi(-(br_exp as i32));
        for kernel in KERNELS {
            for base in BASES {
                let t = forward_with_kernel(&data, base, br, 2.0, kernel).unwrap();
                // Perturb every mapped value by the full ±b'_a an inner
                // codec is allowed to introduce.
                for sign in [1.0f64, -1.0] {
                    let perturbed: Vec<f32> = t
                        .mapped
                        .iter()
                        .map(|&d| (d as f64 + sign * t.abs_bound) as f32)
                        .collect();
                    let back = inverse_with_kernel(
                        &perturbed,
                        base,
                        t.zero_threshold,
                        t.sign_section.as_deref(),
                        kernel,
                    )
                    .unwrap();
                    for (idx, (&a, &b)) in data.iter().zip(&back).enumerate() {
                        if a == 0.0 {
                            prop_assert_eq!(
                                b, 0.0,
                                "{:?} {:?} idx {}: zero not exact", kernel, base, idx
                            );
                        } else {
                            let rel = ((a as f64 - b as f64) / a as f64).abs();
                            prop_assert!(
                                rel <= br,
                                "{:?} {:?} sign {} idx {}: {:e} vs {:e} rel {:e} (br {:e})",
                                kernel, base, sign, idx, a, b, rel, br
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn kernels_reconstruct_within_mutual_tolerance(
        data in prop::collection::vec(any_value(), 1..200),
    ) {
        // The fast kernel's reconstruction may differ from libm's, but both
        // must land within the bound of the *original* — so they can differ
        // from each other by at most 2·br relative.
        let br = 1e-3;
        for base in BASES {
            let t = forward_with_kernel(&data, base, br, 2.0, Kernel::Fast).unwrap();
            let fast = inverse_with_kernel(
                &t.mapped, base, t.zero_threshold, t.sign_section.as_deref(), Kernel::Fast,
            )
            .unwrap();
            let libm = inverse_with_kernel(
                &t.mapped, base, t.zero_threshold, t.sign_section.as_deref(), Kernel::Libm,
            )
            .unwrap();
            for (idx, (&f, &l)) in fast.iter().zip(&libm).enumerate() {
                if l == 0.0 {
                    prop_assert_eq!(f, 0.0, "{:?} idx {}", base, idx);
                } else {
                    let rel = ((f as f64 - l as f64) / l as f64).abs();
                    prop_assert!(
                        rel <= 2.0 * br,
                        "{:?} idx {}: fast {:e} vs libm {:e}",
                        base, idx, f, l
                    );
                }
            }
        }
    }
}
