// `!(x > 0.0)` deliberately treats NaN as invalid; clippy prefers
// partial_cmp, which would hide that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
//! Algorithm 1: the logarithmic data transform with sign and zero handling.
//!
//! Forward (compression side):
//!
//! * `x > 0` → `log_base(x)`
//! * `x < 0` → `log_base(-x)`, with a bit recorded in a sign bitmap
//! * `x = 0` → a sentinel placed `2 b'_a` below the log of the smallest
//!   representable positive magnitude, so that after absolute-error-bounded
//!   compression the reconstruction still falls below the zero threshold
//!   and decodes to an *exact* zero (unlike SZ 1.4's PWR mode).
//!
//! The sign bitmap is compressed (RLE / bit-packing + the LZ pass) only
//! when the field actually mixes signs — Algorithm 1's `P` flag.

use crate::theory;
use pwrel_data::{CodecError, Float};
use pwrel_lossless::{lz, rle};

/// Logarithm base for the mapping. Sec. IV proves the choice cannot change
/// compression quality; Table III shows it *does* change transform speed
/// (base 10 has no fast `10^x` in libm), which is why base 2 is the paper's
/// final pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogBase {
    /// Base 2: `log2`/`exp2` fast paths. The paper's choice.
    Two,
    /// Natural base: `ln`/`exp` fast paths.
    E,
    /// Base 10: fast `log10` forward, but the inverse needs `powf` — the
    /// slow postprocessing the paper measures in Table III.
    Ten,
}

impl LogBase {
    /// Numeric base value.
    pub fn value(self) -> f64 {
        match self {
            LogBase::Two => 2.0,
            LogBase::E => std::f64::consts::E,
            LogBase::Ten => 10.0,
        }
    }

    /// `ln(base)`.
    pub fn ln_base(self) -> f64 {
        match self {
            LogBase::Two => std::f64::consts::LN_2,
            LogBase::E => 1.0,
            LogBase::Ten => std::f64::consts::LN_10,
        }
    }

    /// Stream tag.
    pub fn id(self) -> u8 {
        match self {
            LogBase::Two => 0,
            LogBase::E => 1,
            LogBase::Ten => 2,
        }
    }

    /// Inverse of [`LogBase::id`].
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(LogBase::Two),
            1 => Some(LogBase::E),
            2 => Some(LogBase::Ten),
            _ => None,
        }
    }

    /// `log_base(m)` using the per-base fast path.
    #[inline]
    pub fn log(self, m: f64) -> f64 {
        match self {
            LogBase::Two => m.log2(),
            LogBase::E => m.ln(),
            LogBase::Ten => m.log10(),
        }
    }

    /// `base^d` using the per-base fast path (or `powf` for base 10).
    #[inline]
    pub fn exp(self, d: f64) -> f64 {
        match self {
            LogBase::Two => d.exp2(),
            LogBase::E => d.exp(),
            LogBase::Ten => 10f64.powf(d),
        }
    }

    /// Exponent (base 2) of the smallest positive value of `F`, *including*
    /// denormals — stricter than the paper's normal-range bound so that
    /// denormal inputs also survive the zero threshold.
    pub fn zero_exp2<F: Float>() -> f64 {
        // One below the smallest denormal exponent: -150 (f32) / -1075 (f64).
        (F::ZERO_EXP - F::MANT_BITS as i32 - 1) as f64
    }
}

/// Output of the forward transform.
#[derive(Debug, Clone)]
pub struct TransformedField<F: Float> {
    /// Log-domain data (same length as the input).
    pub mapped: Vec<F>,
    /// Corrected absolute bound `b'_a` for the inner compressor.
    pub abs_bound: f64,
    /// Compressed sign bitmap; `None` when no input value was negative
    /// (Algorithm 1's `P == 1` case).
    pub sign_section: Option<Vec<u8>>,
    /// Decode threshold: reconstructions at or below this decode to zero.
    pub zero_threshold: f64,
}

/// Forward transform (Algorithm 1, lines 1–17).
///
/// Rejects non-finite inputs and `rel_bound` outside `(0, 1)`.
pub fn forward<F: Float>(
    data: &[F],
    base: LogBase,
    rel_bound: f64,
    roundoff_guard: f64,
) -> Result<TransformedField<F>, CodecError> {
    if !(rel_bound > 0.0 && rel_bound < 1.0) {
        return Err(CodecError::InvalidArgument("rel_bound must be in (0, 1)"));
    }

    // Pass 1: map magnitudes, track the sign bitmap and max |log|.
    let mut mapped: Vec<F> = Vec::with_capacity(data.len());
    let mut signs: Vec<bool> = Vec::with_capacity(data.len());
    let mut any_negative = false;
    let mut any_zero = false;
    let mut max_abs_log = 0f64;
    for &x in data {
        if !x.is_finite() {
            return Err(CodecError::InvalidArgument(
                "log transform requires finite input",
            ));
        }
        let v = x.to_f64();
        let neg = v < 0.0;
        any_negative |= neg;
        signs.push(neg);
        if v == 0.0 {
            any_zero = true;
            mapped.push(F::zero()); // placeholder, patched below
        } else {
            let d = base.log(v.abs());
            max_abs_log = max_abs_log.max(d.abs());
            mapped.push(F::from_f64(d));
        }
    }

    // Lemma 2: shrink the bound for mapping round-off. The paper's term is
    // max|log x|·ε0 (forward-map rounding); the +1 adds a constant margin
    // for the inverse map's own output rounding, which matters when the
    // data sits near 1 and max|log x| ≈ 0.
    let eps0 = F::EPSILON.to_f64();
    let abs_bound =
        theory::corrected_abs_bound(base, rel_bound, max_abs_log + 1.0, eps0, roundoff_guard);
    if !(abs_bound > 0.0) {
        return Err(CodecError::InvalidArgument(
            "bound vanishes after round-off correction (dynamic range too large)",
        ));
    }

    // Pass 2: patch zero sentinels (needs abs_bound, hence two passes).
    let zero_log = LogBase::zero_exp2::<F>() * std::f64::consts::LN_2 / base.ln_base();
    let sentinel = F::from_f64(zero_log - 2.0 * abs_bound);
    let zero_threshold = zero_log - abs_bound;
    if any_zero {
        for (m, &x) in mapped.iter_mut().zip(data) {
            if x.to_f64() == 0.0 {
                *m = sentinel;
            }
        }
    }

    // Algorithm 1, lines 15–17: compress signs only when present.
    let sign_section = if any_negative {
        Some(lz::compress(&rle::compress_bits(&signs)))
    } else {
        None
    };

    Ok(TransformedField {
        mapped,
        abs_bound,
        sign_section,
        zero_threshold,
    })
}

/// Inverse transform: log-domain reconstructions back to the value domain.
pub fn inverse<F: Float>(
    mapped: &[F],
    base: LogBase,
    zero_threshold: f64,
    sign_section: Option<&[u8]>,
) -> Result<Vec<F>, CodecError> {
    let signs: Option<Vec<bool>> = match sign_section {
        Some(buf) => {
            let unpacked = lz::decompress(buf)?;
            let mut pos = 0;
            let bits = rle::decompress_bits(&unpacked, &mut pos)?;
            if bits.len() != mapped.len() {
                return Err(CodecError::Corrupt("sign bitmap length mismatch"));
            }
            Some(bits)
        }
        None => None,
    };

    let mut out = Vec::with_capacity(mapped.len());
    for (i, &d) in mapped.iter().enumerate() {
        let dv = d.to_f64();
        let v = if dv <= zero_threshold {
            0.0
        } else {
            let m = base.exp(dv);
            if signs.as_ref().is_some_and(|s| s[i]) {
                -m
            } else {
                m
            }
        };
        out.push(F::from_f64(v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASES: [LogBase; 3] = [LogBase::Two, LogBase::E, LogBase::Ten];

    #[test]
    fn lossless_round_trip_without_inner_compression() {
        // forward → inverse with untouched mapped data must respect the
        // bound on its own (pure mapping round-off).
        for base in BASES {
            let data: Vec<f32> = vec![1.0, -2.5, 0.0, 3.75e-6, -1.2e8, 42.0, 0.0];
            let t = forward(&data, base, 1e-3, 2.0).unwrap();
            let back = inverse(&t.mapped, base, t.zero_threshold, t.sign_section.as_deref())
                .unwrap();
            for (&a, &b) in data.iter().zip(&back) {
                if a == 0.0 {
                    assert_eq!(b, 0.0, "{base:?}");
                } else {
                    let rel = ((a - b) / a).abs();
                    assert!(rel <= 1e-3, "{base:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn bound_survives_worst_case_perturbation() {
        // Perturb every mapped value by ±b'_a (what an inner compressor is
        // allowed to do) and check the relative bound still holds.
        for base in BASES {
            let data: Vec<f32> = (1..2000)
                .map(|i| (i as f32 * 0.731).sin() * 10f32.powi((i % 60) - 30))
                .filter(|v| *v != 0.0)
                .collect();
            let br = 1e-2;
            let t = forward(&data, base, br, 2.0).unwrap();
            for sign in [1.0, -1.0] {
                let perturbed: Vec<f32> = t
                    .mapped
                    .iter()
                    .map(|&d| F32Ext::add_f64(d, sign * t.abs_bound))
                    .collect();
                let back =
                    inverse(&perturbed, base, t.zero_threshold, t.sign_section.as_deref())
                        .unwrap();
                for (idx, (&a, &b)) in data.iter().zip(&back).enumerate() {
                    let rel = ((a as f64 - b as f64) / a as f64).abs();
                    assert!(
                        rel <= br,
                        "{base:?} sign {sign} idx {idx}: {a} vs {b} rel {rel}"
                    );
                }
            }
        }
    }

    /// Helper: f32 + f64 in f64 then round to f32 (mimics inner codec).
    trait F32Ext {
        fn add_f64(self, d: f64) -> f32;
    }
    impl F32Ext for f32 {
        fn add_f64(self, d: f64) -> f32 {
            (self as f64 + d) as f32
        }
    }

    #[test]
    fn zeros_decode_exactly_even_when_perturbed() {
        let data = vec![0.0f32, 5.0, 0.0, -3.0, 0.0];
        let t = forward(&data, LogBase::Two, 0.5, 2.0).unwrap();
        let perturbed: Vec<f32> = t
            .mapped
            .iter()
            .map(|&d| (d as f64 + t.abs_bound) as f32)
            .collect();
        let back = inverse(&perturbed, LogBase::Two, t.zero_threshold, t.sign_section.as_deref())
            .unwrap();
        assert_eq!(back[0], 0.0);
        assert_eq!(back[2], 0.0);
        assert_eq!(back[4], 0.0);
        assert!(back[1] > 0.0 && back[3] < 0.0);
    }

    #[test]
    fn all_positive_data_skips_sign_section() {
        let data = vec![1.0f32, 2.0, 0.5];
        let t = forward(&data, LogBase::Two, 1e-2, 2.0).unwrap();
        assert!(t.sign_section.is_none());
        let data_neg = vec![1.0f32, -2.0, 0.5];
        let t2 = forward(&data_neg, LogBase::Two, 1e-2, 2.0).unwrap();
        assert!(t2.sign_section.is_some());
    }

    #[test]
    fn sign_bitmap_round_trips() {
        let data: Vec<f32> = (0..3000)
            .map(|i| if (i / 100) % 2 == 0 { 1.5 } else { -1.5 })
            .collect();
        let t = forward(&data, LogBase::E, 1e-2, 2.0).unwrap();
        let back = inverse(&t.mapped, LogBase::E, t.zero_threshold, t.sign_section.as_deref())
            .unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            assert_eq!(a.signum(), b.signum());
        }
        // Runs of 100 compress far below 3000/8 packed bytes.
        assert!(t.sign_section.unwrap().len() < 150);
    }

    #[test]
    fn denormals_survive() {
        let data = vec![1e-42f32, -1e-44, 2e-38, 0.0];
        let t = forward(&data, LogBase::Two, 1e-2, 2.0).unwrap();
        let back = inverse(&t.mapped, LogBase::Two, t.zero_threshold, t.sign_section.as_deref())
            .unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            if a == 0.0 {
                assert_eq!(b, 0.0);
            } else {
                assert!(((a as f64 - b as f64) / a as f64).abs() <= 1e-2 + 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn abs_bound_matches_lemma2() {
        let data: Vec<f32> = vec![2.0f32.powi(100), 2.0f32.powi(-100)];
        let t = forward(&data, LogBase::Two, 1e-3, 1.0).unwrap();
        let expected = (1.0f64 + 1e-3).log2() - (100.0 + 1.0) * f32::EPSILON as f64;
        assert!((t.abs_bound - expected).abs() < 1e-15);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(forward(&[1.0f32], LogBase::Two, 0.0, 2.0).is_err());
        assert!(forward(&[1.0f32], LogBase::Two, 1.0, 2.0).is_err());
        assert!(forward(&[f32::NAN], LogBase::Two, 0.1, 2.0).is_err());
        assert!(forward(&[f32::INFINITY], LogBase::Two, 0.1, 2.0).is_err());
    }

    #[test]
    fn base_ids_round_trip() {
        for base in BASES {
            assert_eq!(LogBase::from_id(base.id()), Some(base));
        }
        assert_eq!(LogBase::from_id(9), None);
    }

    #[test]
    fn f64_transform_round_trip() {
        let data: Vec<f64> = vec![1e-300, -1e300, 0.0, 7.7];
        let t = forward(&data, LogBase::Two, 1e-4, 2.0).unwrap();
        let back = inverse(&t.mapped, LogBase::Two, t.zero_threshold, t.sign_section.as_deref())
            .unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            if a == 0.0 {
                assert_eq!(b, 0.0);
            } else {
                assert!(((a - b) / a).abs() <= 1e-4);
            }
        }
    }
}
