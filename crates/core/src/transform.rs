//! Algorithm 1: the logarithmic data transform with sign and zero handling.
//!
//! Forward (compression side):
//!
//! * `x > 0` → `log_base(x)`
//! * `x < 0` → `log_base(-x)`, with a bit recorded in a sign bitmap
//! * `x = 0` → a sentinel placed `2 b'_a` below the log of the smallest
//!   representable positive magnitude, so that after absolute-error-bounded
//!   compression the reconstruction still falls below the zero threshold
//!   and decodes to an *exact* zero (unlike SZ 1.4's PWR mode).
//!
//! The sign bitmap is compressed (RLE / bit-packing + the LZ pass) only
//! when the field actually mixes signs — Algorithm 1's `P` flag.
//!
//! The mapping itself is organized for throughput: one integer
//! [`pwrel_kernels::scan()`] pass learns everything the bound needs (validity,
//! signs, zeros, an exponent-field bound on `max |log x|`), then the data is
//! mapped through [`Kernel::log_batch`] in fixed-size chunks through a
//! stack scratch buffer — no intermediate `Vec<f64>`, no second sweep for
//! the sign bitmap, and the fast-kernel approximation error is folded into
//! the Lemma 2 correction so the point-wise guarantee still holds.

use crate::theory;
use pwrel_data::{CodecError, Float, Transform};
use pwrel_kernels::scan;
use pwrel_lossless::{lz, rle};

pub use pwrel_kernels::{Kernel, LogBase, LogPlan, CHUNK};

/// Output of the forward transform.
#[derive(Debug, Clone)]
pub struct TransformedField<F: Float> {
    /// Log-domain data (same length as the input).
    pub mapped: Vec<F>,
    /// Corrected absolute bound `b'_a` for the inner compressor.
    pub abs_bound: f64,
    /// Compressed sign bitmap; `None` when no input value was negative
    /// (Algorithm 1's `P == 1` case).
    pub sign_section: Option<Vec<u8>>,
    /// Decode threshold: reconstructions at or below this decode to zero.
    pub zero_threshold: f64,
}

/// Scans `data` and computes the Lemma 2 / kernel-corrected bound and zero
/// sentinel — the per-field setup shared by every transform path.
pub fn plan<F: Float>(
    data: &[F],
    base: LogBase,
    rel_bound: f64,
    roundoff_guard: f64,
    kernel: Kernel,
) -> Result<LogPlan, CodecError> {
    if !(rel_bound > 0.0 && rel_bound < 1.0) {
        return Err(CodecError::InvalidArgument("rel_bound must be in (0, 1)"));
    }
    let field = scan(data)?;

    // Lemma 2: shrink the bound for mapping round-off. The paper's term is
    // max|log x|·ε0 (forward-map rounding); the +1 adds a constant margin
    // for the inverse map's own output rounding, which matters when the
    // data sits near 1 and max|log x| ≈ 0. The kernel margins widen the
    // correction further when the approximate kernels are in play.
    let eps0 = F::EPSILON.to_f64();
    let abs_bound = theory::kernel_corrected_abs_bound(
        base,
        rel_bound,
        field.max_abs_log(base) + 1.0,
        eps0,
        roundoff_guard,
        kernel,
    );
    if !abs_bound.is_finite() || abs_bound <= 0.0 {
        return Err(CodecError::InvalidArgument(
            "bound vanishes after round-off correction (dynamic range too large)",
        ));
    }

    let zero_log = LogBase::zero_exp2::<F>() * std::f64::consts::LN_2 / base.ln_base();
    Ok(LogPlan {
        base,
        kernel,
        abs_bound,
        sentinel: zero_log - 2.0 * abs_bound,
        zero_threshold: zero_log - abs_bound,
        any_negative: field.any_negative,
    })
}

/// Compresses a sign bitmap the way Algorithm 1 stores it.
pub fn compress_signs(signs: &[bool]) -> Vec<u8> {
    lz::compress(&rle::compress_bits(signs))
}

/// Decodes a sign section back to `expect` bits.
pub fn decompress_signs(buf: &[u8], expect: usize) -> Result<Vec<bool>, CodecError> {
    let unpacked = lz::decompress(buf)?;
    let mut pos = 0;
    let bits = rle::decompress_bits(&unpacked, &mut pos, expect)?;
    if bits.len() != expect {
        return Err(CodecError::Corrupt("sign bitmap length mismatch"));
    }
    Ok(bits)
}

/// Forward transform (Algorithm 1, lines 1–17) with the kernel chosen by
/// `PWREL_KERNEL` (default: the fast batched kernels).
///
/// Rejects non-finite inputs and `rel_bound` outside `(0, 1)`.
pub fn forward<F: Float>(
    data: &[F],
    base: LogBase,
    rel_bound: f64,
    roundoff_guard: f64,
) -> Result<TransformedField<F>, CodecError> {
    forward_with_kernel(data, base, rel_bound, roundoff_guard, Kernel::from_env())
}

/// [`forward`] with an explicit kernel choice.
pub fn forward_with_kernel<F: Float>(
    data: &[F],
    base: LogBase,
    rel_bound: f64,
    roundoff_guard: f64,
    kernel: Kernel,
) -> Result<TransformedField<F>, CodecError> {
    let plan = plan(data, base, rel_bound, roundoff_guard, kernel)?;

    let mut mapped: Vec<F> = vec![F::zero(); data.len()];
    let mut signs: Vec<bool> = Vec::with_capacity(if plan.any_negative { data.len() } else { 0 });
    Transform::forward(&plan, data, &mut mapped, &mut signs);

    let sign_section = plan.any_negative.then(|| compress_signs(&signs));
    Ok(TransformedField {
        mapped,
        abs_bound: plan.abs_bound,
        sign_section,
        zero_threshold: plan.zero_threshold,
    })
}

/// Inverse transform: log-domain reconstructions back to the value domain,
/// kernel chosen by `PWREL_KERNEL`.
pub fn inverse<F: Float>(
    mapped: &[F],
    base: LogBase,
    zero_threshold: f64,
    sign_section: Option<&[u8]>,
) -> Result<Vec<F>, CodecError> {
    inverse_with_kernel(
        mapped,
        base,
        zero_threshold,
        sign_section,
        Kernel::from_env(),
    )
}

/// [`inverse`] with an explicit kernel choice.
pub fn inverse_with_kernel<F: Float>(
    mapped: &[F],
    base: LogBase,
    zero_threshold: f64,
    sign_section: Option<&[u8]>,
    kernel: Kernel,
) -> Result<Vec<F>, CodecError> {
    let signs: Vec<bool> = match sign_section {
        Some(buf) => decompress_signs(buf, mapped.len())?,
        None => Vec::new(),
    };

    // Decoders reconstruct from stream metadata without the encoder's
    // bound fields, so a partial plan carries exactly the inverse state.
    let plan = LogPlan {
        base,
        kernel,
        abs_bound: 0.0,
        sentinel: 0.0,
        zero_threshold,
        any_negative: !signs.is_empty(),
    };
    let mut out: Vec<F> = vec![F::zero(); mapped.len()];
    Transform::inverse(&plan, mapped, &mut out, &signs);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASES: [LogBase; 3] = [LogBase::Two, LogBase::E, LogBase::Ten];
    const KERNELS: [Kernel; 2] = [Kernel::Fast, Kernel::Libm];

    #[test]
    fn lossless_round_trip_without_inner_compression() {
        // forward → inverse with untouched mapped data must respect the
        // bound on its own (pure mapping round-off), under both kernels.
        for kernel in KERNELS {
            for base in BASES {
                let data: Vec<f32> = vec![1.0, -2.5, 0.0, 3.75e-6, -1.2e8, 42.0, 0.0];
                let t = forward_with_kernel(&data, base, 1e-3, 2.0, kernel).unwrap();
                let back = inverse_with_kernel(
                    &t.mapped,
                    base,
                    t.zero_threshold,
                    t.sign_section.as_deref(),
                    kernel,
                )
                .unwrap();
                for (&a, &b) in data.iter().zip(&back) {
                    if a == 0.0 {
                        assert_eq!(b, 0.0, "{base:?}");
                    } else {
                        let rel = ((a - b) / a).abs();
                        assert!(rel <= 1e-3, "{kernel:?} {base:?}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn bound_survives_worst_case_perturbation() {
        // Perturb every mapped value by ±b'_a (what an inner compressor is
        // allowed to do) and check the relative bound still holds — with
        // the fast kernel too, whose error the widened correction absorbs.
        for kernel in KERNELS {
            for base in BASES {
                let data: Vec<f32> = (1..2000)
                    .map(|i| (i as f32 * 0.731).sin() * 10f32.powi((i % 60) - 30))
                    .filter(|v| *v != 0.0)
                    .collect();
                let br = 1e-2;
                let t = forward_with_kernel(&data, base, br, 2.0, kernel).unwrap();
                for sign in [1.0, -1.0] {
                    let perturbed: Vec<f32> = t
                        .mapped
                        .iter()
                        .map(|&d| F32Ext::add_f64(d, sign * t.abs_bound))
                        .collect();
                    let back = inverse_with_kernel(
                        &perturbed,
                        base,
                        t.zero_threshold,
                        t.sign_section.as_deref(),
                        kernel,
                    )
                    .unwrap();
                    for (idx, (&a, &b)) in data.iter().zip(&back).enumerate() {
                        let rel = ((a as f64 - b as f64) / a as f64).abs();
                        assert!(
                            rel <= br,
                            "{kernel:?} {base:?} sign {sign} idx {idx}: {a} vs {b} rel {rel}"
                        );
                    }
                }
            }
        }
    }

    /// Helper: f32 + f64 in f64 then round to f32 (mimics inner codec).
    trait F32Ext {
        fn add_f64(self, d: f64) -> f32;
    }
    impl F32Ext for f32 {
        fn add_f64(self, d: f64) -> f32 {
            (self as f64 + d) as f32
        }
    }

    #[test]
    fn zeros_decode_exactly_even_when_perturbed() {
        let data = vec![0.0f32, 5.0, 0.0, -3.0, 0.0];
        let t = forward(&data, LogBase::Two, 0.5, 2.0).unwrap();
        let perturbed: Vec<f32> = t
            .mapped
            .iter()
            .map(|&d| (d as f64 + t.abs_bound) as f32)
            .collect();
        let back = inverse(
            &perturbed,
            LogBase::Two,
            t.zero_threshold,
            t.sign_section.as_deref(),
        )
        .unwrap();
        assert_eq!(back[0], 0.0);
        assert_eq!(back[2], 0.0);
        assert_eq!(back[4], 0.0);
        assert!(back[1] > 0.0 && back[3] < 0.0);
    }

    #[test]
    fn all_positive_data_skips_sign_section() {
        let data = vec![1.0f32, 2.0, 0.5];
        let t = forward(&data, LogBase::Two, 1e-2, 2.0).unwrap();
        assert!(t.sign_section.is_none());
        let data_neg = vec![1.0f32, -2.0, 0.5];
        let t2 = forward(&data_neg, LogBase::Two, 1e-2, 2.0).unwrap();
        assert!(t2.sign_section.is_some());
    }

    #[test]
    fn sign_bitmap_round_trips() {
        let data: Vec<f32> = (0..3000)
            .map(|i| if (i / 100) % 2 == 0 { 1.5 } else { -1.5 })
            .collect();
        let t = forward(&data, LogBase::E, 1e-2, 2.0).unwrap();
        let back = inverse(
            &t.mapped,
            LogBase::E,
            t.zero_threshold,
            t.sign_section.as_deref(),
        )
        .unwrap();
        for (&a, &b) in data.iter().zip(&back) {
            assert_eq!(a.signum(), b.signum());
        }
        // Runs of 100 compress far below 3000/8 packed bytes.
        assert!(t.sign_section.unwrap().len() < 150);
    }

    #[test]
    fn denormals_survive() {
        for kernel in KERNELS {
            let data = vec![1e-42f32, -1e-44, 2e-38, 0.0];
            let t = forward_with_kernel(&data, LogBase::Two, 1e-2, 2.0, kernel).unwrap();
            let back = inverse_with_kernel(
                &t.mapped,
                LogBase::Two,
                t.zero_threshold,
                t.sign_section.as_deref(),
                kernel,
            )
            .unwrap();
            for (&a, &b) in data.iter().zip(&back) {
                if a == 0.0 {
                    assert_eq!(b, 0.0);
                } else {
                    assert!(
                        ((a as f64 - b as f64) / a as f64).abs() <= 1e-2 + 1e-5,
                        "{kernel:?}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn abs_bound_matches_lemma2() {
        // Exponent-field scan on {2^100, 2^−100}: hi = 101, lo = 100 →
        // max_abs_log = 101, plus the constant +1 inverse-rounding margin.
        let data: Vec<f32> = vec![2.0f32.powi(100), 2.0f32.powi(-100)];
        let t = forward_with_kernel(&data, LogBase::Two, 1e-3, 1.0, Kernel::Libm).unwrap();
        let expected = (1.0f64 + 1e-3).log2() - (101.0 + 1.0) * f32::EPSILON as f64;
        assert!((t.abs_bound - expected).abs() < 1e-15);
        // The fast kernel widens the correction by its documented margins.
        let tf = forward_with_kernel(&data, LogBase::Two, 1e-3, 1.0, Kernel::Fast).unwrap();
        assert!(tf.abs_bound < t.abs_bound);
        let widened = t.abs_bound
            - Kernel::Fast.forward_abs_margin(LogBase::Two)
            - Kernel::Fast.inverse_rel_margin() / LogBase::Two.ln_base();
        assert!((tf.abs_bound - widened).abs() < 1e-15);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(forward(&[1.0f32], LogBase::Two, 0.0, 2.0).is_err());
        assert!(forward(&[1.0f32], LogBase::Two, 1.0, 2.0).is_err());
        assert!(forward(&[f32::NAN], LogBase::Two, 0.1, 2.0).is_err());
        assert!(forward(&[f32::INFINITY], LogBase::Two, 0.1, 2.0).is_err());
    }

    #[test]
    fn base_ids_round_trip() {
        for base in BASES {
            assert_eq!(LogBase::from_id(base.id()), Some(base));
        }
        assert_eq!(LogBase::from_id(9), None);
    }

    #[test]
    fn f64_transform_round_trip() {
        for kernel in KERNELS {
            let data: Vec<f64> = vec![1e-300, -1e300, 0.0, 7.7];
            let t = forward_with_kernel(&data, LogBase::Two, 1e-4, 2.0, kernel).unwrap();
            let back = inverse_with_kernel(
                &t.mapped,
                LogBase::Two,
                t.zero_threshold,
                t.sign_section.as_deref(),
                kernel,
            )
            .unwrap();
            for (&a, &b) in data.iter().zip(&back) {
                if a == 0.0 {
                    assert_eq!(b, 0.0);
                } else {
                    assert!(((a - b) / a).abs() <= 1e-4, "{kernel:?}");
                }
            }
        }
    }

    #[test]
    fn kernels_agree_on_the_container_metadata() {
        // Fast and Libm must produce the same sign section and compatible
        // thresholds so streams decode under either kernel.
        let data: Vec<f32> = vec![3.0, -1.5, 0.0, 9.75];
        let a = forward_with_kernel(&data, LogBase::Two, 1e-3, 2.0, Kernel::Fast).unwrap();
        let b = forward_with_kernel(&data, LogBase::Two, 1e-3, 2.0, Kernel::Libm).unwrap();
        assert_eq!(a.sign_section, b.sign_section);
        assert!(a.abs_bound <= b.abs_bound);
    }
}
