//! Documented numeric casts for the bound-arithmetic modules.
//!
//! Audit lint L2 bans bare `as` casts in the transform/bound code
//! (`core::transform`, `core::pwrel`, the quantizers): a silent
//! truncation there corrupts an error bound instead of a pixel.
//! Conversions with a `From` impl should use it directly; the helpers
//! here cover the conversions `From` cannot express, each documenting
//! the range argument that makes it exact. This file is the single
//! allowlisted home for those casts.

/// Length → `u64` for stream serialization. Lossless: `usize` is at
/// most 64 bits on every supported target.
#[inline]
pub fn u64_from_len(n: usize) -> u64 {
    n as u64
}

/// Capacity/alphabet value → `usize`. Lossless: `usize` is at least
/// 32 bits on every supported target.
#[inline]
pub fn usize_from_u32(v: u32) -> usize {
    v as usize
}

/// Float width in bits (32 or 64) → container header byte.
#[inline]
pub fn width_byte(bits: u32) -> u8 {
    debug_assert!(bits == 32 || bits == 64, "not a float width: {bits}");
    bits as u8
}

/// Rounded quantization offset → integer code. The caller must already
/// have checked `v.is_finite() && v.abs() < radius` with
/// `radius ≤ 2^31`, so the truncating cast is exact.
#[inline]
pub fn quant_code(v: f64) -> i64 {
    v as i64
}

/// Integer quantization code → `f64` reconstruction arithmetic. Exact:
/// codes are bounded by the interval capacity, `|q| < 2^32 ≪ 2^53`.
#[inline]
pub fn f64_from_quant(q: i64) -> f64 {
    q as f64
}

/// Biased code `radius + q`, in `[0, capacity)` by the quantizer's range
/// check, → `u32` symbol for the entropy stage.
#[inline]
pub fn symbol_u32(v: i64) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "code out of symbol range: {v}");
    v as u32
}

/// Element/set-bit count → `f64` for recorded diagnostics (densities,
/// rates). Exact for counts up to `2^53`; beyond that it rounds, which
/// only perturbs an observability ratio, never a bound.
#[inline]
pub fn f64_from_count(n: usize) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_in_documented_ranges() {
        assert_eq!(u64_from_len(usize::MAX), usize::MAX as u64);
        assert_eq!(f64_from_count(1 << 24), 16777216.0);
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
        assert_eq!(width_byte(32), 32);
        assert_eq!(width_byte(64), 64);
        assert_eq!(quant_code(-3.0), -3);
        assert_eq!(quant_code(2147483647.0), (1 << 31) - 1);
        assert_eq!(f64_from_quant(-(1 << 32)), -4294967296.0);
        assert_eq!(symbol_u32(65535), 65535);
    }
}
