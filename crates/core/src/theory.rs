//! The error-bound mapping and numerically checkable theorem statements.
//!
//! Theorem 1 (sufficiency): if `f` and `g` satisfy
//! `f⁻¹(f(x) + g(b_r)) = (1 + b_r) x`, compressing `f(x)` with absolute
//! bound `g(b_r)` bounds the relative error of `f⁻¹` by `b_r`.
//!
//! Theorem 2 (uniqueness): the only continuous solution is
//! `f(x) = log_base(x) + C`, with `g(b_r) = log_base(1 + b_r)`.
//!
//! Lemma 2 (round-off): with mapping round-off `ε0`, the usable bound is
//! `b'_a = log_base(1 + b_r) − max|log_base x| · ε0`.
//!
//! Theorem 3 (base robustness in SZ): quantization indices produced under
//! two different bases differ by at most `|log_{1+b_r}(1−b_r) − 1|` per
//! Lorenzo neighbour (1, 3, 7 neighbours for 1D/2D/3D).

use crate::transform::LogBase;
use pwrel_kernels::Kernel;

/// `g(b_r) = log_base(1 + b_r)` — Theorem 2's error-bound mapping.
pub fn abs_bound_for(base: LogBase, rel_bound: f64) -> f64 {
    (1.0 + rel_bound).ln() / base.ln_base()
}

/// Inverse of [`abs_bound_for`]: the relative bound an absolute bound in
/// the log domain translates back to.
pub fn rel_bound_for(base: LogBase, abs_bound: f64) -> f64 {
    (abs_bound * base.ln_base()).exp() - 1.0
}

/// Lemma 2: round-off-corrected absolute bound.
///
/// `guard` scales the `ε0` term; the paper uses 1 (machine epsilon on the
/// forward map). We default to 2 elsewhere to also cover inverse-map
/// rounding, which Lemma 2's model omits.
pub fn corrected_abs_bound(
    base: LogBase,
    rel_bound: f64,
    max_abs_log: f64,
    eps0: f64,
    guard: f64,
) -> f64 {
    abs_bound_for(base, rel_bound) - guard * max_abs_log * eps0
}

/// Lemma 2 widened for approximate kernels.
///
/// On top of [`corrected_abs_bound`], subtracts the kernel's documented
/// worst-case errors: its forward map can sit `forward_abs_margin` away
/// from the exact log (an absolute log-domain displacement), and its
/// inverse introduces a relative error `inverse_rel_margin`, which costs
/// `margin / ln(base)` in the log domain (since `d/dx log_b(x) = 1/(x ln b)`,
/// a relative value-space error `ε` ≈ a log-space offset `ε / ln b`).
/// Every term only *shrinks* the bound handed to the inner compressor, so
/// the end-to-end point-wise relative guarantee survives the approximation.
/// For [`Kernel::Libm`] both margins are zero and this reduces exactly to
/// [`corrected_abs_bound`].
pub fn kernel_corrected_abs_bound(
    base: LogBase,
    rel_bound: f64,
    max_abs_log: f64,
    eps0: f64,
    guard: f64,
    kernel: Kernel,
) -> f64 {
    corrected_abs_bound(base, rel_bound, max_abs_log, eps0, guard)
        - kernel.forward_abs_margin(base)
        - kernel.inverse_rel_margin() / base.ln_base()
}

/// Theorem 3's per-neighbour quantization-index deviation bound:
/// `|log_{1+b_r}(1 − b_r) − 1|`.
pub fn quant_index_deviation(rel_bound: f64) -> f64 {
    assert!((0.0..1.0).contains(&rel_bound) && rel_bound > 0.0);
    ((1.0 - rel_bound).ln() / (1.0 + rel_bound).ln() - 1.0).abs()
}

/// Lorenzo neighbour count per dimensionality (paper footnote 1).
pub fn lorenzo_neighbours(rank: u8) -> u32 {
    match rank {
        1 => 1,
        2 => 3,
        _ => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASES: [LogBase; 3] = [LogBase::Two, LogBase::E, LogBase::Ten];

    #[test]
    fn g_is_monotone_in_rel_bound() {
        for base in BASES {
            let mut prev = 0.0;
            for br in [1e-6, 1e-4, 1e-2, 0.1, 0.3, 0.9] {
                let ba = abs_bound_for(base, br);
                assert!(ba > prev, "{base:?} br={br}");
                prev = ba;
            }
        }
    }

    #[test]
    fn g_round_trips_through_its_inverse() {
        for base in BASES {
            for br in [1e-5, 1e-3, 0.05, 0.5] {
                let back = rel_bound_for(base, abs_bound_for(base, br));
                assert!((back - br).abs() < 1e-12 * (1.0 + br), "{base:?} {br}");
            }
        }
    }

    #[test]
    fn theorem1_identity_holds() {
        // f⁻¹(f(x) + g(b)) = (1+b) x for the log mapping, any base.
        for base in BASES {
            let a = base.value();
            for x in [1e-10f64, 0.3, 1.0, 7.5, 1e12] {
                for br in [1e-4, 1e-2, 0.3] {
                    let lhs = a.powf(x.log(a) + abs_bound_for(base, br));
                    let rhs = (1.0 + br) * x;
                    assert!(
                        ((lhs - rhs) / rhs).abs() < 1e-12,
                        "{base:?} x={x} br={br}: {lhs} vs {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem1_lower_side_holds() {
        // f⁻¹(f(x) − g(b)) = x / (1+b) ≥ (1−b) x: the lower excursion
        // never exceeds the relative bound either.
        let base = LogBase::Two;
        for x in [0.1f64, 2.0, 1e6] {
            for br in [1e-3, 0.2] {
                let lo = 2f64.powf(x.log2() - abs_bound_for(base, br));
                assert!(lo >= (1.0 - br) * x - 1e-12 * x);
                assert!(((x - lo) / x) <= br + 1e-12);
            }
        }
    }

    #[test]
    fn corrected_bound_shrinks_with_dynamic_range() {
        let base = LogBase::Two;
        let eps = f32::EPSILON as f64;
        let b0 = corrected_abs_bound(base, 1e-3, 0.0, eps, 1.0);
        let b1 = corrected_abs_bound(base, 1e-3, 128.0, eps, 1.0);
        let b2 = corrected_abs_bound(base, 1e-3, 1024.0, eps, 1.0);
        assert!(b0 > b1 && b1 > b2);
        assert!((b0 - (1.0f64 + 1e-3).log2()).abs() < 1e-15);
    }

    #[test]
    fn kernel_widening_reduces_to_lemma2_for_libm() {
        for base in BASES {
            let plain = corrected_abs_bound(base, 1e-3, 40.0, f32::EPSILON as f64, 2.0);
            let libm = kernel_corrected_abs_bound(
                base,
                1e-3,
                40.0,
                f32::EPSILON as f64,
                2.0,
                Kernel::Libm,
            );
            assert_eq!(plain, libm);
            let fast = kernel_corrected_abs_bound(
                base,
                1e-3,
                40.0,
                f32::EPSILON as f64,
                2.0,
                Kernel::Fast,
            );
            assert!(fast < libm);
            // The widening is tiny next to the bound itself.
            assert!(libm - fast < 1e-9);
        }
    }

    #[test]
    fn quant_deviation_is_small_for_small_bounds() {
        // Theorem 3: for small b_r the index deviation approaches 2
        // (log_{1+b}(1-b) → -1), so across bases codes differ by ≤ ~2/7·dim.
        let d3 = quant_index_deviation(1e-3);
        assert!((d3 - 2.0).abs() < 0.01, "d3 = {d3}");
        let d1 = quant_index_deviation(0.3);
        assert!(d1 > 2.0 && d1 < 3.0, "d1 = {d1}");
    }

    #[test]
    fn neighbour_counts() {
        assert_eq!(lorenzo_neighbours(1), 1);
        assert_eq!(lorenzo_neighbours(2), 3);
        assert_eq!(lorenzo_neighbours(3), 7);
    }
}
