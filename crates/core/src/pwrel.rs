//! [`PwRelCompressor`]: the transform scheme composed with an inner
//! absolute-error-bounded codec.
//!
//! This is the deliverable of the paper: `PwRelCompressor<SzCompressor>` is
//! "SZ_T" and `PwRelCompressor<ZfpCompressor>` is "ZFP_T". Compression:
//!
//! 1. forward log transform (with Lemma 2's round-off-corrected bound),
//! 2. inner `compress_abs` on the log-domain data,
//! 3. container = sign section + inner stream.

use crate::cast;
use crate::theory;
use crate::transform::{self, LogBase};
use pwrel_bitstream::{bytesio, varint};
use pwrel_data::{AbsErrorCodec, CodecError, Dims, Float};
use pwrel_kernels::{Kernel, LogFusedCodec};
use pwrel_trace::{stage, Recorder, Span};

const MAGIC: &[u8; 4] = b"PWT1";

/// Assembles the `PWT1` container around an inner stream. Shared by the
/// buffered and fused compression paths so their outputs stay identical.
fn container(
    float_bits: u32,
    base: LogBase,
    rel_bound: f64,
    zero_threshold: f64,
    sign_section: Option<&[u8]>,
    inner_stream: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(inner_stream.len() + 64);
    out.extend_from_slice(MAGIC);
    out.push(cast::width_byte(float_bits));
    out.push(base.id());
    out.push(u8::from(sign_section.is_some()));
    bytesio::put_f64(&mut out, rel_bound);
    bytesio::put_f64(&mut out, zero_threshold);
    if let Some(signs) = sign_section {
        varint::write_uvarint(&mut out, cast::u64_from_len(signs.len()));
        out.extend_from_slice(signs);
    }
    varint::write_uvarint(&mut out, cast::u64_from_len(inner_stream.len()));
    out.extend_from_slice(inner_stream);
    out
}

/// Point-wise relative-error-bounded compressor built from any
/// absolute-error-bounded codec via the logarithmic transformation scheme.
///
/// ```
/// use pwrel_core::{PwRelCompressor, LogBase};
/// use pwrel_sz::SzCompressor;
/// use pwrel_data::Dims;
///
/// let data: Vec<f32> = (1..=1000).map(|i| (i as f32) * 0.25).collect();
/// let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
/// let stream = codec.compress(&data, Dims::d1(data.len()), 1e-3).unwrap();
/// let back: Vec<f32> = codec.decompress(&stream).unwrap();
/// for (a, b) in data.iter().zip(&back) {
///     assert!(((a - b) / a).abs() <= 1e-3);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PwRelCompressor<C> {
    /// The wrapped absolute-error-bounded codec.
    pub inner: C,
    /// Logarithm base (the paper fixes 2; others kept for the base study).
    pub base: LogBase,
    /// Multiplier on Lemma 2's `ε0` round-off term (the paper uses 1; the
    /// default 2 also covers inverse-map rounding).
    pub roundoff_guard: f64,
}

impl<C> PwRelCompressor<C> {
    /// Wraps `inner` with the given base and the default round-off guard.
    pub fn new(inner: C, base: LogBase) -> Self {
        Self {
            inner,
            base,
            roundoff_guard: 2.0,
        }
    }

    /// Compresses `data` so that every decompressed value satisfies
    /// `|x - x'| <= rel_bound * |x|`, with exact zeros preserved.
    pub fn compress<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rel_bound: f64,
    ) -> Result<Vec<u8>, CodecError>
    where
        C: AbsErrorCodec<F>,
    {
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        let t = transform::forward(data, self.base, rel_bound, self.roundoff_guard)?;
        let inner_stream = self.inner.compress_abs(&t.mapped, dims, t.abs_bound)?;
        Ok(container(
            F::BITS,
            self.base,
            rel_bound,
            t.zero_threshold,
            t.sign_section.as_deref(),
            &inner_stream,
        ))
    }

    /// Single-pass variant of [`PwRelCompressor::compress`] for inner
    /// codecs that implement [`LogFusedCodec`]: the log transform runs
    /// inside the codec's own sweep (chunked through a stack scratch)
    /// instead of materializing the mapped field first. Produces the same
    /// container bytes as the buffered route; kernel chosen by
    /// `PWREL_KERNEL`.
    pub fn compress_fused<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rel_bound: f64,
    ) -> Result<Vec<u8>, CodecError>
    where
        C: LogFusedCodec<F>,
    {
        self.compress_fused_with_kernel(data, dims, rel_bound, Kernel::from_env())
    }

    /// [`PwRelCompressor::compress_fused`] with per-stage recording on
    /// `rec` (kernel chosen by `PWREL_KERNEL`). Identical output bytes.
    pub fn compress_fused_traced<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rel_bound: f64,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError>
    where
        C: LogFusedCodec<F>,
    {
        self.compress_fused_with_kernel_traced(data, dims, rel_bound, Kernel::from_env(), rec)
    }

    /// [`PwRelCompressor::compress_fused`] with an explicit kernel choice.
    pub fn compress_fused_with_kernel<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rel_bound: f64,
        kernel: Kernel,
    ) -> Result<Vec<u8>, CodecError>
    where
        C: LogFusedCodec<F>,
    {
        self.compress_fused_with_kernel_traced(data, dims, rel_bound, kernel, pwrel_trace::noop())
    }

    /// The fully-general fused entry point: explicit kernel plus a
    /// recorder. The transform planning pass, the inner codec sweep, and
    /// the sign-section coding are each attributed to their own stage;
    /// the [`stage::SIGNS`] span is emitted even for all-positive fields
    /// so per-codec stage coverage stays deterministic.
    pub fn compress_fused_with_kernel_traced<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rel_bound: f64,
        kernel: Kernel,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError>
    where
        C: LogFusedCodec<F>,
    {
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        let plan = {
            let _transform = Span::enter(rec, stage::TRANSFORM);
            transform::plan(data, self.base, rel_bound, self.roundoff_guard, kernel)?
        };
        if rec.is_enabled() {
            // How much of the uncorrected log-domain budget Lemma 2 (plus
            // the kernel's evaluation-error term) gives back to round-off.
            let uncorrected = theory::abs_bound_for(self.base, rel_bound);
            if uncorrected > 0.0 {
                rec.observe(
                    stage::O_LEMMA2_CORRECTION,
                    1.0 - plan.abs_bound / uncorrected,
                );
            }
        }
        let fused = self.inner.compress_fused_traced(data, dims, &plan, rec)?;
        let sign_section = {
            let _signs = Span::enter(rec, stage::SIGNS);
            if rec.is_enabled() {
                if let Some(signs) = &fused.signs {
                    if !signs.is_empty() {
                        let neg = signs.iter().filter(|&&s| s).count();
                        rec.observe(
                            stage::O_SIGN_DENSITY,
                            cast::f64_from_count(neg) / cast::f64_from_count(signs.len()),
                        );
                    }
                } else {
                    rec.observe(stage::O_SIGN_DENSITY, 0.0);
                }
            }
            fused.signs.as_deref().map(transform::compress_signs)
        };
        Ok(container(
            F::BITS,
            self.base,
            rel_bound,
            plan.zero_threshold,
            sign_section.as_deref(),
            &fused.stream,
        ))
    }

    /// Decompresses, returning the data and its grid shape.
    pub fn decompress_full<F: Float>(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError>
    where
        C: AbsErrorCodec<F>,
    {
        self.decompress_full_traced(bytes, pwrel_trace::noop())
    }

    /// [`PwRelCompressor::decompress_full`] with per-stage recording:
    /// the inner codec decode and the inverse transform each get a span.
    pub fn decompress_full_traced<F: Float>(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError>
    where
        C: AbsErrorCodec<F>,
    {
        self.decompress_full_pooled(bytes, rec, &pwrel_data::SerialLanes)
    }

    /// [`PwRelCompressor::decompress_full_traced`] with an executor for
    /// the inner codec's intra-stream fan-out (interleaved entropy
    /// sub-streams decode on a worker pool). Identical output for any
    /// executor; the serial executor reproduces `decompress_full_traced`
    /// exactly.
    pub fn decompress_full_pooled<F: Float>(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<F>, Dims), CodecError>
    where
        C: AbsErrorCodec<F>,
    {
        if !bytes.starts_with(MAGIC) {
            return Err(CodecError::Mismatch("bad PWT magic"));
        }
        let mut pos = 4usize;
        let eof = || CodecError::Corrupt("eof in header");
        let float_bits = *bytes.get(pos).ok_or_else(eof)?;
        pos += 1;
        if u32::from(float_bits) != F::BITS {
            return Err(CodecError::Mismatch("element type differs from stream"));
        }
        let base = LogBase::from_id(*bytes.get(pos).ok_or_else(eof)?)
            .ok_or(CodecError::Corrupt("bad base id"))?;
        pos += 1;
        let has_signs = match *bytes.get(pos).ok_or_else(eof)? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Corrupt("bad sign flag")),
        };
        pos += 1;
        let _rel_bound = bytesio::get_f64(bytes, &mut pos)?;
        let zero_threshold = bytesio::get_f64(bytes, &mut pos)?;
        let len_of = |v: u64| {
            usize::try_from(v).map_err(|_| CodecError::Corrupt("section length overflows usize"))
        };
        let sign_section = if has_signs {
            let len = len_of(varint::read_uvarint(bytes, &mut pos)?)?;
            Some(bytesio::get_bytes(bytes, &mut pos, len)?)
        } else {
            None
        };
        let inner_len = len_of(varint::read_uvarint(bytes, &mut pos)?)?;
        let inner_stream = bytesio::get_bytes(bytes, &mut pos, inner_len)?;

        let (mapped, dims) = self.inner.decompress_abs_pooled(inner_stream, rec, exec)?;
        let data = {
            let _inv = Span::enter(rec, stage::TRANSFORM_INV);
            transform::inverse(&mapped, base, zero_threshold, sign_section)?
        };
        Ok((data, dims))
    }

    /// Decompresses, returning just the data.
    pub fn decompress<F: Float>(&self, bytes: &[u8]) -> Result<Vec<F>, CodecError>
    where
        C: AbsErrorCodec<F>,
    {
        Ok(self.decompress_full(bytes)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::{grf, nyx, Scale};
    use pwrel_sz::SzCompressor;
    use pwrel_zfp::ZfpCompressor;

    fn sz_t(base: LogBase) -> PwRelCompressor<SzCompressor> {
        PwRelCompressor::new(SzCompressor::default(), base)
    }

    fn zfp_t(base: LogBase) -> PwRelCompressor<ZfpCompressor> {
        PwRelCompressor::new(ZfpCompressor, base)
    }

    fn assert_rel_bounded(data: &[f32], dec: &[f32], br: f64, tag: &str) {
        assert_eq!(data.len(), dec.len());
        for (idx, (&a, &b)) in data.iter().zip(dec).enumerate() {
            if a == 0.0 {
                assert_eq!(b, 0.0, "{tag} idx {idx}: zero not exact");
            } else {
                let rel = ((a as f64 - b as f64) / a as f64).abs();
                assert!(rel <= br, "{tag} idx {idx}: {a} vs {b} rel {rel} > {br}");
            }
        }
    }

    #[test]
    fn sz_t_strictly_bounded_on_nyx_density() {
        let field = nyx::dark_matter_density(Scale::Small);
        let codec = sz_t(LogBase::Two);
        for br in [1e-1, 1e-2, 1e-3, 1e-4] {
            let bytes = codec.compress(&field.data, field.dims, br).unwrap();
            let (dec, dims) = codec.decompress_full::<f32>(&bytes).unwrap();
            assert_eq!(dims, field.dims);
            assert_rel_bounded(&field.data, &dec, br, "density");
        }
    }

    #[test]
    fn sz_t_strictly_bounded_on_signed_velocity() {
        let field = nyx::velocity_x(Scale::Small);
        let codec = sz_t(LogBase::Two);
        let bytes = codec.compress(&field.data, field.dims, 1e-3).unwrap();
        let dec: Vec<f32> = codec.decompress(&bytes).unwrap();
        assert_rel_bounded(&field.data, &dec, 1e-3, "velocity");
        // Signs must be preserved exactly.
        for (&a, &b) in field.data.iter().zip(&dec) {
            assert!(a.signum() == b.signum() || a == 0.0);
        }
    }

    #[test]
    fn zfp_t_strictly_bounded() {
        let field = nyx::dark_matter_density(Scale::Small);
        let codec = zfp_t(LogBase::Two);
        for br in [1e-1, 1e-3] {
            let bytes = codec.compress(&field.data, field.dims, br).unwrap();
            let dec: Vec<f32> = codec.decompress(&bytes).unwrap();
            assert_rel_bounded(&field.data, &dec, br, "zfp_t");
        }
    }

    #[test]
    fn all_bases_bounded_and_similar_size() {
        let field = nyx::dark_matter_density(Scale::Small);
        let mut sizes = Vec::new();
        for base in [LogBase::Two, LogBase::E, LogBase::Ten] {
            let codec = sz_t(base);
            let bytes = codec.compress(&field.data, field.dims, 1e-2).unwrap();
            let dec: Vec<f32> = codec.decompress(&bytes).unwrap();
            assert_rel_bounded(&field.data, &dec, 1e-2, "base study");
            sizes.push(bytes.len() as f64);
        }
        // Lemma 3/4: base choice barely affects compressed size (<5%).
        let max = sizes.iter().cloned().fold(f64::MIN, f64::max);
        let min = sizes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.05, "sizes = {sizes:?}");
    }

    #[test]
    fn zeros_and_mixed_signs_with_zero_regions() {
        let dims = pwrel_data::Dims::d2(40, 50);
        let mut data = grf::gaussian_field(dims, 77, 3, 2);
        for (i, v) in data.iter_mut().enumerate() {
            if i % 11 == 0 {
                *v = 0.0;
            }
        }
        let codec = sz_t(LogBase::Two);
        let bytes = codec.compress(&data, dims, 1e-2).unwrap();
        let dec: Vec<f32> = codec.decompress(&bytes).unwrap();
        assert_rel_bounded(&data, &dec, 1e-2, "zeros+signs");
    }

    #[test]
    fn wide_dynamic_range_f64() {
        let dims = pwrel_data::Dims::d1(4096);
        let data: Vec<f64> = (0..4096)
            .map(|i| {
                let mag = 10f64.powi((i % 200) - 100);
                if i % 2 == 0 {
                    mag
                } else {
                    -mag
                }
            })
            .collect();
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let bytes = codec.compress(&data, dims, 1e-3).unwrap();
        let dec: Vec<f64> = codec.decompress(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            assert!(((a - b) / a).abs() <= 1e-3);
        }
    }

    #[test]
    fn sz_t_beats_sz_pwr_on_spiky_data() {
        // The headline claim: on data whose blocks mix tiny and large
        // magnitudes, the transform scheme compresses much better than the
        // blockwise PWR mode.
        let dims = pwrel_data::Dims::d1(1 << 15);
        let mut data: Vec<f32> = (0..dims.len())
            .map(|i| 1000.0 + 10.0 * (i as f32 * 0.01).sin())
            .collect();
        for b in 0..(dims.len() / 256) {
            data[b * 256 + 13] = 1e-5; // one tiny value per PWR block
        }
        let br = 1e-2;
        let sz = SzCompressor::default();
        let pwr_stream = sz.compress_pwr(&data, dims, br).unwrap();
        let t_stream = sz_t(LogBase::Two).compress(&data, dims, br).unwrap();
        assert!(
            (t_stream.len() as f64) < pwr_stream.len() as f64 / 2.0,
            "SZ_T {} vs SZ_PWR {}",
            t_stream.len(),
            pwr_stream.len()
        );
    }

    /// Spiky signed data with zero runs — exercises every fused-path
    /// branch (sentinels, signs, unpredictables).
    fn fused_test_field() -> (Vec<f32>, pwrel_data::Dims) {
        let dims = pwrel_data::Dims::d3(20, 15, 10);
        let mut data = grf::gaussian_field(dims, 1234, 3, 2);
        for (i, v) in data.iter_mut().enumerate() {
            if i % 17 == 0 {
                *v = 0.0;
            } else if i % 23 == 0 {
                *v *= 1e20;
            } else if i % 29 == 0 {
                *v = 1e-40; // subnormal-range magnitude
            }
        }
        (data, dims)
    }

    #[test]
    fn fused_sz_stream_is_byte_identical_to_buffered() {
        let (data, dims) = fused_test_field();
        for kernel in [pwrel_kernels::Kernel::Fast, pwrel_kernels::Kernel::Libm] {
            let codec = sz_t(LogBase::Two);
            let t = transform::forward_with_kernel(&data, LogBase::Two, 1e-3, 2.0, kernel).unwrap();
            let buffered = container(
                32,
                LogBase::Two,
                1e-3,
                t.zero_threshold,
                t.sign_section.as_deref(),
                &codec
                    .inner
                    .compress_abs(&t.mapped, dims, t.abs_bound)
                    .unwrap(),
            );
            let fused = codec
                .compress_fused_with_kernel(&data, dims, 1e-3, kernel)
                .unwrap();
            assert_eq!(buffered, fused, "{kernel:?}");
            let dec: Vec<f32> = codec.decompress(&fused).unwrap();
            assert_rel_bounded(&data, &dec, 1e-3, "fused sz");
        }
    }

    #[test]
    fn fused_zfp_stream_is_byte_identical_to_buffered() {
        let (data, dims) = fused_test_field();
        for kernel in [pwrel_kernels::Kernel::Fast, pwrel_kernels::Kernel::Libm] {
            let codec = zfp_t(LogBase::Two);
            let t = transform::forward_with_kernel(&data, LogBase::Two, 1e-2, 2.0, kernel).unwrap();
            let buffered = container(
                32,
                LogBase::Two,
                1e-2,
                t.zero_threshold,
                t.sign_section.as_deref(),
                &AbsErrorCodec::<f32>::compress_abs(&codec.inner, &t.mapped, dims, t.abs_bound)
                    .unwrap(),
            );
            let fused = codec
                .compress_fused_with_kernel(&data, dims, 1e-2, kernel)
                .unwrap();
            assert_eq!(buffered, fused, "{kernel:?}");
            let dec: Vec<f32> = codec.decompress(&fused).unwrap();
            assert_rel_bounded(&data, &dec, 1e-2, "fused zfp");
        }
    }

    #[test]
    fn fused_hybrid_sz_matches_buffered() {
        let (data, dims) = fused_test_field();
        let codec = PwRelCompressor::new(
            SzCompressor {
                hybrid_predictor: true,
                ..SzCompressor::default()
            },
            LogBase::Two,
        );
        let buffered = codec.compress(&data, dims, 1e-3).unwrap();
        let fused = codec.compress_fused(&data, dims, 1e-3).unwrap();
        assert_eq!(buffered, fused);
    }

    #[test]
    fn rejects_nonfinite_and_bad_bounds() {
        let codec = sz_t(LogBase::Two);
        let dims = pwrel_data::Dims::d1(2);
        assert!(codec.compress(&[1.0f32, f32::NAN], dims, 1e-2).is_err());
        assert!(codec.compress(&[1.0f32, 2.0], dims, 0.0).is_err());
        assert!(codec.compress(&[1.0f32, 2.0], dims, 1.5).is_err());
    }

    #[test]
    fn corrupt_streams_rejected() {
        let codec = sz_t(LogBase::Two);
        let dims = pwrel_data::Dims::d1(64);
        let data = vec![1.5f32; 64];
        let bytes = codec.compress(&data, dims, 1e-2).unwrap();
        assert!(codec.decompress::<f32>(&bytes[..8]).is_err());
        assert!(codec.decompress::<f64>(&bytes).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(codec.decompress::<f32>(&bad).is_err());
    }

    #[test]
    fn tighter_bound_gives_lower_ratio() {
        let field = nyx::dark_matter_density(Scale::Small);
        let codec = sz_t(LogBase::Two);
        let loose = codec.compress(&field.data, field.dims, 1e-1).unwrap();
        let tight = codec.compress(&field.data, field.dims, 1e-4).unwrap();
        assert!(tight.len() > loose.len());
    }

    #[test]
    fn empty_input() {
        let codec = sz_t(LogBase::Two);
        let bytes = codec
            .compress::<f32>(&[], pwrel_data::Dims::d1(0), 1e-2)
            .unwrap();
        let dec: Vec<f32> = codec.decompress(&bytes).unwrap();
        assert!(dec.is_empty());
    }
}
