#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The paper's contribution: a logarithmic transformation scheme that turns
//! any absolute-error-bounded lossy compressor into a point-wise
//! relative-error-bounded one.
//!
//! *An Efficient Transformation Scheme for Lossy Data Compression with
//! Point-wise Relative Error Bound* (Liang, Di, Tao, Chen, Cappello — IEEE
//! CLUSTER 2018) proves (Theorems 1–2) that `f(x) = log_base x + C` is the
//! **unique** continuous bijection under which a point-wise relative bound
//! `b_r` in the original domain becomes the absolute bound
//! `b_a = log_base(1 + b_r)` in the transformed domain, and (Lemma 2) that
//! floating-point round-off requires shrinking the bound to
//! `b'_a = log_base(1 + b_r) - max|log_base x| · ε0`.
//!
//! Modules:
//!
//! * [`theory`] — the error-bound mapping `g`, its round-off correction,
//!   and numerically checkable statements of the paper's theorems,
//! * [`transform`] — Algorithm 1: forward/inverse log mapping with sign
//!   bitmap and exact-zero sentinel handling, parameterized by
//!   [`LogBase`] (bases 2, e, 10 — Sec. IV studies their equivalence),
//! * [`pwrel`] — [`PwRelCompressor`], the wrapper that composes the
//!   transform with any [`pwrel_data::AbsErrorCodec`] (SZ → "SZ_T",
//!   ZFP → "ZFP_T").

pub mod cast;
pub mod pwrel;
pub mod theory;
pub mod transform;

pub use pwrel::PwRelCompressor;
pub use transform::{Kernel, LogBase, TransformedField};
