//! Command execution.
//!
//! Every compress/decompress path goes through the unified
//! [`pwrel_pipeline::CodecRegistry`]: there are no per-codec match arms
//! here. New streams are unified containers; legacy per-codec streams
//! keep decoding via the registry's sniff fallback.

use crate::archive::{self, Entry};
use crate::args::{Cli, Command, ElemType, RemoteAction};
use crate::io;
use crate::CliError;
use pwrel_data::{CodecError, Dims, Float};
use pwrel_metrics::RelErrorStats;
use pwrel_pipeline::{global, CompressOpts, PipelineElem, StreamInfo};

/// Runs a parsed command, writing human-readable progress to `out`.
pub fn run(cli: Cli, out: &mut impl std::io::Write) -> Result<(), CliError> {
    match cli.command {
        Command::Compress {
            input,
            output,
            dims,
            bound,
            codec,
            elem,
            base,
        } => {
            let opts = CompressOpts { bound, base };
            // Validate the shape before spending time compressing.
            let (raw_bytes, stream) = match elem {
                ElemType::F32 => {
                    let data = io::read_f32(&input)?;
                    check_dims(data.len(), dims)?;
                    let s = compress_one(&data, dims, &codec, &opts)?;
                    (data.len() * 4, s)
                }
                ElemType::F64 => {
                    let data = io::read_f64(&input)?;
                    check_dims(data.len(), dims)?;
                    let s = compress_one(&data, dims, &codec, &opts)?;
                    (data.len() * 8, s)
                }
            };
            std::fs::write(&output, &stream)?;
            writeln!(
                out,
                "{input} -> {output}: {raw_bytes} -> {} bytes (ratio {:.2}x)",
                stream.len(),
                raw_bytes as f64 / stream.len() as f64
            )?;
        }
        Command::Decompress {
            input,
            output,
            elem,
        } => {
            let stream = std::fs::read(&input)?;
            match elem {
                ElemType::F32 => {
                    let (data, dims) = decompress_any::<f32>(&stream)?;
                    io::write_f32(&output, &data)?;
                    writeln!(out, "{input} -> {output}: {} values ({dims})", data.len())?;
                }
                ElemType::F64 => {
                    let (data, dims) = decompress_any::<f64>(&stream)?;
                    io::write_f64(&output, &data)?;
                    writeln!(out, "{input} -> {output}: {} values ({dims})", data.len())?;
                }
            }
        }
        Command::Info { input } => {
            let stream = std::fs::read(&input)?;
            match pwrel_pipeline::identify(&stream) {
                Some(StreamInfo::Unified(h)) => {
                    let name = global()
                        .get(h.codec_id)
                        .map_or("<unknown codec id>", |c| c.name());
                    writeln!(
                        out,
                        "{input}: {} bytes, unified container: codec {name} (id {}), \
                         f{}, dims {}, bound {:e}, {}",
                        stream.len(),
                        h.codec_id,
                        h.elem_bits,
                        h.dims,
                        h.bound,
                        describe_entropy(h.entropy_mode)
                    )?;
                }
                Some(StreamInfo::Framed(h)) => {
                    let name = match global().get(h.codec_id) {
                        Some(c) => c.name(),
                        None if h.codec_id == pwrel_pipeline::stream::EXTERNAL_CODEC_ID => {
                            "<external>"
                        }
                        None => "<unknown codec id>",
                    };
                    writeln!(
                        out,
                        "{input}: {} bytes, framed stream: codec {name} (id {}), \
                         f{}, dims {}, bound {:e}, {} chunks, {}",
                        stream.len(),
                        h.codec_id,
                        h.elem_bits,
                        h.dims,
                        h.bound,
                        h.n_chunks,
                        describe_entropy(h.entropy_mode)
                    )?;
                }
                Some(StreamInfo::Legacy(kind)) => {
                    writeln!(out, "{input}: {} bytes, {}", stream.len(), kind.describe())?;
                }
                None => {
                    writeln!(out, "{input}: {} bytes, unrecognized", stream.len())?;
                }
            }
        }
        Command::Codecs => {
            writeln!(out, "registered codecs:")?;
            for c in global().iter() {
                writeln!(out, "  {:<2} {:<12} {}", c.id(), c.name(), c.describe())?;
            }
        }
        Command::Pack {
            output,
            bound,
            codec,
            elem,
            base,
            inputs,
        } => {
            let opts = CompressOpts { bound, base };
            // Fields are independent: compress them on a worker pool.
            let pool = pwrel_parallel::WorkerPool::per_cpu();
            let results = pool.map(inputs.clone(), |(path, dims)| {
                let name = std::path::Path::new(&path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("field")
                    .to_string();
                let packed = match elem {
                    ElemType::F32 => io::read_f32(&path).and_then(|data| {
                        check_dims(data.len(), dims)?;
                        Ok((compress_one(&data, dims, &codec, &opts)?, data.len() * 4))
                    }),
                    ElemType::F64 => io::read_f64(&path).and_then(|data| {
                        check_dims(data.len(), dims)?;
                        Ok((compress_one(&data, dims, &codec, &opts)?, data.len() * 8))
                    }),
                };
                packed.map(|(stream, raw)| {
                    (
                        Entry {
                            name,
                            dims,
                            elem_bits: if elem == ElemType::F32 { 32 } else { 64 },
                            stream,
                        },
                        raw,
                    )
                })
            });
            let mut entries = Vec::with_capacity(inputs.len());
            let mut raw_total = 0usize;
            for r in results {
                let (entry, raw) = r?;
                raw_total += raw;
                entries.push(entry);
            }
            let bytes = archive::pack(&entries)?;
            std::fs::write(&output, &bytes)?;
            writeln!(
                out,
                "{output}: {} fields, {raw_total} -> {} bytes (ratio {:.2}x)",
                entries.len(),
                bytes.len(),
                raw_total as f64 / bytes.len() as f64
            )?;
        }
        Command::Unpack { input, output } => {
            let bytes = std::fs::read(&input)?;
            let entries = archive::unpack(&bytes)?;
            std::fs::create_dir_all(&output)?;
            for e in &entries {
                let dir = std::path::Path::new(&output);
                match e.elem_bits {
                    32 => {
                        let (data, dims) = decompress_any::<f32>(&e.stream)?;
                        check_entry_dims(e, dims)?;
                        io::write_f32(dir.join(format!("{}.f32", e.name)), &data)?;
                    }
                    _ => {
                        let (data, dims) = decompress_any::<f64>(&e.stream)?;
                        check_entry_dims(e, dims)?;
                        io::write_f64(dir.join(format!("{}.f64", e.name)), &data)?;
                    }
                }
                writeln!(out, "{} ({}, f{})", e.name, e.dims, e.elem_bits)?;
            }
        }
        Command::List { input } => {
            let bytes = std::fs::read(&input)?;
            let entries = archive::unpack(&bytes)?;
            writeln!(out, "{input}: {} fields", entries.len())?;
            for e in &entries {
                writeln!(
                    out,
                    "  {:<24} {:>14} f{} {:>10} bytes",
                    e.name,
                    e.dims.to_string(),
                    e.elem_bits,
                    e.stream.len()
                )?;
            }
        }
        Command::Verify {
            input,
            stream,
            dims,
            bound,
            elem,
        } => {
            let compressed = std::fs::read(&stream)?;
            match elem {
                ElemType::F32 => {
                    let original = io::read_f32(&input)?;
                    verify_one(&original, dims, bound, &compressed, out)?;
                }
                ElemType::F64 => {
                    let original = io::read_f64(&input)?;
                    verify_one(&original, dims, bound, &compressed, out)?;
                }
            }
        }
        Command::Run {
            input,
            dims,
            bound,
            codec,
            elem,
            base,
            trace,
            stats,
            stream,
            chunk_elems,
            workers,
            window,
        } => {
            let opts = CompressOpts { bound, base };
            if stream {
                let tuning = StreamTuning {
                    chunk_elems,
                    workers,
                    window,
                };
                match elem {
                    ElemType::F32 => streaming_run::<f32>(
                        &input,
                        dims,
                        &codec,
                        &opts,
                        &tuning,
                        trace.as_deref(),
                        stats,
                        out,
                    )?,
                    ElemType::F64 => streaming_run::<f64>(
                        &input,
                        dims,
                        &codec,
                        &opts,
                        &tuning,
                        trace.as_deref(),
                        stats,
                        out,
                    )?,
                }
            } else {
                match elem {
                    ElemType::F32 => {
                        let data = io::read_f32(&input)?;
                        check_dims(data.len(), dims)?;
                        traced_run(&data, dims, &codec, &opts, trace.as_deref(), stats, out)?;
                    }
                    ElemType::F64 => {
                        let data = io::read_f64(&input)?;
                        check_dims(data.len(), dims)?;
                        traced_run(&data, dims, &codec, &opts, trace.as_deref(), stats, out)?;
                    }
                }
            }
        }
        Command::Serve { args } => {
            let cfg = pwrel_serve::ServeConfig::from_args(&args)
                .map_err(|e| CliError::Usage(format!("serve: {e}")))?;
            let server = pwrel_serve::Server::bind(cfg)?;
            if let Ok(addr) = server.local_addr() {
                writeln!(out, "pwrel-serve listening on {addr}")?;
                out.flush()?;
            }
            server.run()?;
        }
        Command::Remote { server, action } => remote(&server, action, out)?,
    }
    Ok(())
}

/// Executes one `pwrel remote` action against a running server.
fn remote(
    server: &str,
    action: RemoteAction,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    let mut client = pwrel_serve::Client::connect(server)?;
    match action {
        RemoteAction::Compress {
            input,
            output,
            dims,
            bound,
            codec,
            elem,
            base,
            chunk_elems,
        } => {
            // Same up-front shape check as the local streaming path: the
            // server reads exactly dims.len() elements off the wire.
            let nbytes = match elem {
                ElemType::F32 => 4u64,
                ElemType::F64 => 8u64,
            };
            let raw_bytes = dims.len() as u64 * nbytes;
            let file_bytes = std::fs::metadata(&input)?.len();
            if file_bytes != raw_bytes {
                return Err(CliError::Usage(format!(
                    "{input} holds {file_bytes} bytes but --dims {dims} needs {raw_bytes}"
                )));
            }
            // parse_codec validated the name; the id is what goes on the
            // wire (and what the server validates against its registry).
            let codec_id = global()
                .by_name(&codec)
                .ok_or_else(|| CliError::Usage(format!("unknown codec '{codec}'")))?
                .id();
            let header = pwrel_serve::CompressHeader {
                codec_id,
                elem_bits: (nbytes * 8) as u8,
                base,
                bound,
                dims,
                chunk_elems: chunk_elems.unwrap_or(0) as u64,
            };
            let mut src = std::io::BufReader::new(std::fs::File::open(&input)?);
            let mut dst = std::io::BufWriter::new(std::fs::File::create(&output)?);
            let stream_bytes = client.compress_stream(&header, &mut src, &mut dst)?;
            std::io::Write::flush(&mut dst)?;
            writeln!(
                out,
                "{input} -> {output} via {server}: {raw_bytes} -> {stream_bytes} bytes \
                 (ratio {:.2}x)",
                raw_bytes as f64 / stream_bytes.max(1) as f64
            )?;
        }
        RemoteAction::Decompress { input, output } => {
            let mut src = std::io::BufReader::new(std::fs::File::open(&input)?);
            let mut dst = std::io::BufWriter::new(std::fs::File::create(&output)?);
            let raw_bytes = client.decompress_stream(&mut src, &mut dst)?;
            std::io::Write::flush(&mut dst)?;
            writeln!(
                out,
                "{input} -> {output} via {server}: {raw_bytes} raw bytes"
            )?;
        }
        RemoteAction::Info { input } => {
            // The server only needs the leading bytes; Client::info clips
            // the blob to the protocol cap.
            let stream = std::fs::read(&input)?;
            let text = client.info(&stream)?;
            writeln!(out, "{input}: {text}")?;
        }
        RemoteAction::Codecs => write!(out, "{}", client.codecs()?)?,
        RemoteAction::Metrics => write!(out, "{}", client.metrics()?)?,
        RemoteAction::Ping => {
            client.ping()?;
            writeln!(out, "{server}: ok (protocol v{})", client.server_version())?;
        }
    }
    Ok(())
}

/// Instrumented compress+decompress round trip: records every stage on a
/// [`pwrel_trace::TraceSink`], optionally writes Chrome trace_event JSON
/// and prints the per-stage summary, and always reports the ratio plus a
/// root-span/wall-clock reconciliation line.
fn traced_run<F: Float + PipelineElem>(
    data: &[F],
    dims: Dims,
    codec: &str,
    opts: &CompressOpts,
    trace_path: Option<&str>,
    stats: bool,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    use pwrel_trace::{stage, TraceSink};

    // The sink's epoch starts here, so its wall clock covers exactly the
    // round trip the root spans measure.
    let sink = TraceSink::new();
    let stream = global().compress_traced(codec, data, dims, opts, &sink)?;
    let (back, _) = global().decompress_traced::<F>(&stream, &sink)?;
    let wall_ns = sink.elapsed_ns().max(1);
    if back.len() != data.len() {
        return Err(CliError::Codec(CodecError::Corrupt(
            "round trip changed the value count",
        )));
    }

    let raw_bytes = data.len() * (F::BITS as usize / 8);
    writeln!(
        out,
        "{codec}: {raw_bytes} -> {} bytes (ratio {:.2}x)",
        stream.len(),
        raw_bytes as f64 / stream.len() as f64
    )?;
    report_trace(
        &sink,
        &[stage::COMPRESS, stage::DECOMPRESS],
        wall_ns,
        trace_path,
        stats,
        out,
    )
}

/// Human-readable entropy-mode line for `pwrel info`: the mode byte is
/// also the sub-stream count (1 = legacy single stream, 4 = interleaved).
fn describe_entropy(mode: u8) -> String {
    match mode {
        pwrel_pipeline::ENTROPY_MODE_SINGLE => "entropy mode 1 (single stream)".into(),
        pwrel_pipeline::ENTROPY_MODE_INTERLEAVED => {
            format!("entropy mode {mode} (interleaved, {mode} sub-streams)")
        }
        other => format!("entropy mode {other} (unknown)"),
    }
}

/// Tuning knobs for the `--stream` round trip; `None` picks the
/// documented default.
struct StreamTuning {
    chunk_elems: Option<usize>,
    workers: Option<usize>,
    window: Option<usize>,
}

/// A sink writer that only counts: the streaming round trip verifies
/// the decoded byte count without materializing the reconstruction.
#[derive(Default)]
struct CountingWriter {
    bytes: u64,
}

impl std::io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Instrumented *streaming* round trip: the raw file is read chunk by
/// chunk through [`pwrel_parallel::ChunkedCodec`] (never fully
/// resident), compressed into a framed stream, and decompressed back
/// through a counting sink. Reports the same ratio/trace lines as the
/// one-shot path plus the chunking parameters.
#[allow(clippy::too_many_arguments)] // mirrors traced_run plus the tuning
fn streaming_run<F: Float + PipelineElem>(
    input: &str,
    dims: Dims,
    codec: &str,
    opts: &CompressOpts,
    tuning: &StreamTuning,
    trace_path: Option<&str>,
    stats: bool,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    use pwrel_parallel::{ChunkedCodec, WorkerPool};
    use pwrel_pipeline::{ReadSource, WriteSink};
    use pwrel_trace::{stage, TraceSink};

    // Validate the shape against the file length before starting: the
    // source reads exactly dims.len() elements.
    let raw_bytes = (dims.len() * F::NBYTES) as u64;
    let file_bytes = std::fs::metadata(input)?.len();
    if file_bytes != raw_bytes {
        return Err(CliError::Usage(format!(
            "{input} holds {file_bytes} bytes but --dims {dims} needs {raw_bytes}"
        )));
    }

    // Default chunk: about 4 MiB of elements, clamped to the field so
    // small inputs stay a single legal chunk.
    let chunk_elems = tuning
        .chunk_elems
        .unwrap_or((4 << 20) / F::NBYTES)
        .min(dims.len());
    // Default workers: one per CPU, clamped to the chunk count — extra
    // threads on a short stream would only sit idle in the window.
    let chunks = dims.len().div_ceil(chunk_elems.max(1)).max(1);
    let pool = match tuning.workers {
        Some(w) => WorkerPool::new(w),
        None => WorkerPool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(chunks),
        ),
    };
    let mut chunked = ChunkedCodec::new(pool, chunk_elems);
    if let Some(w) = tuning.window {
        chunked.window = w;
    }

    let sink = TraceSink::new();
    let mut src: ReadSource<_> =
        ReadSource::new(std::io::BufReader::new(std::fs::File::open(input)?));
    let mut stream = Vec::new();
    let cstats = chunked.compress_stream_traced::<F>(
        global(),
        codec,
        &mut src,
        &mut stream,
        dims,
        opts,
        &sink,
    )?;

    let mut frames: &[u8] = &stream;
    let mut decoded: WriteSink<CountingWriter> = WriteSink::new(CountingWriter::default());
    let (header, dstats) =
        chunked.decompress_stream_traced::<F>(global(), &mut frames, &mut decoded, &sink)?;
    let wall_ns = sink.elapsed_ns().max(1);
    if header.dims != dims || dstats.bytes_out != raw_bytes {
        return Err(CliError::Codec(CodecError::Corrupt(
            "round trip changed the value count",
        )));
    }

    writeln!(
        out,
        "{codec} (streamed): {raw_bytes} -> {} bytes in {} chunks (ratio {:.2}x)",
        cstats.bytes_out,
        cstats.chunks,
        raw_bytes as f64 / cstats.bytes_out as f64
    )?;
    writeln!(
        out,
        "pipeline: {} elems/chunk, {} workers, window {}",
        chunk_elems,
        chunked.pool.workers(),
        chunked.window
    )?;
    report_trace(
        &sink,
        &[stage::STREAM_COMPRESS, stage::STREAM_DECOMPRESS],
        wall_ns,
        trace_path,
        stats,
        out,
    )
}

/// Prints the root-span/wall-clock reconciliation line, the optional
/// per-stage summary table, and the optional Chrome trace JSON file —
/// shared by the one-shot and streaming `run` paths.
fn report_trace(
    sink: &pwrel_trace::TraceSink,
    roots: &[&str],
    wall_ns: u64,
    trace_path: Option<&str>,
    stats: bool,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    use pwrel_trace::export;

    // Root spans against the sink's lifetime: anything far below 100%
    // is time the trace cannot attribute.
    let rows = export::stage_rows(sink);
    let root_ns: u64 = roots
        .iter()
        .filter_map(|name| rows.get(name))
        .map(|row| row.total_ns)
        .sum();
    writeln!(
        out,
        "traced: {:.3} ms of {:.3} ms wall ({:.1}%)",
        root_ns as f64 / 1e6,
        wall_ns as f64 / 1e6,
        100.0 * root_ns as f64 / wall_ns as f64
    )?;

    if stats {
        writeln!(out)?;
        write!(out, "{}", export::summary_table(sink))?;
    }
    if let Some(path) = trace_path {
        std::fs::write(path, export::chrome_trace_json(sink))?;
        writeln!(out, "trace written to {path}")?;
    }
    Ok(())
}

/// Rejects a raw file whose length disagrees with `--dims` (checked
/// before compression starts).
fn check_dims(n_points: usize, dims: Dims) -> Result<(), CliError> {
    if n_points != dims.len() {
        return Err(CliError::Usage(format!(
            "file holds {n_points} values but --dims {dims} needs {}",
            dims.len()
        )));
    }
    Ok(())
}

/// Rejects archives whose stream dims disagree with their header.
fn check_entry_dims(e: &Entry, dims: Dims) -> Result<(), CliError> {
    if dims != e.dims {
        return Err(CliError::Codec(CodecError::Corrupt(
            "archive entry dims disagree with its stream",
        )));
    }
    Ok(())
}

/// Compresses with the named registered codec.
fn compress_one<F: Float + PipelineElem>(
    data: &[F],
    dims: Dims,
    codec: &str,
    opts: &CompressOpts,
) -> Result<Vec<u8>, CliError> {
    Ok(global().compress(codec, data, dims, opts)?)
}

/// Decompresses any stream: unified containers dispatch on their codec
/// id, legacy streams fall back to the per-codec magic sniff.
fn decompress_any<F: Float + PipelineElem>(stream: &[u8]) -> Result<(Vec<F>, Dims), CliError> {
    Ok(global().decompress(stream)?)
}

/// Decompresses and prints error statistics against the original.
fn verify_one<F: Float + PipelineElem>(
    original: &[F],
    dims: Dims,
    bound: f64,
    compressed: &[u8],
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    if original.len() != dims.len() {
        return Err(CliError::Usage("original length != --dims".into()));
    }
    let (decoded, ddims) = decompress_any::<F>(compressed)?;
    if ddims != dims || decoded.len() != original.len() {
        return Err(CliError::Usage(format!(
            "stream dims {ddims} do not match --dims {dims}"
        )));
    }
    let stats = RelErrorStats::compute(original, &decoded, bound);
    writeln!(out, "points:        {}", original.len())?;
    writeln!(out, "bound:         {bound:e}")?;
    writeln!(out, "within bound:  {:.4}%", stats.bounded_fraction * 100.0)?;
    writeln!(out, "avg rel error: {:.3e}", stats.avg_rel)?;
    writeln!(out, "max rel error: {:.3e}", stats.max_rel)?;
    writeln!(out, "broken zeros:  {}", stats.broken_zeros)?;
    writeln!(
        out,
        "verdict:       {}",
        if stats.max_rel <= bound && stats.broken_zeros == 0 {
            "PASS"
        } else {
            "FAIL"
        }
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("pwrel_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    fn run_str(cmd: &str) -> Result<String, CliError> {
        let cli = Cli::parse(&argv(cmd))?;
        let mut out = Vec::new();
        run(cli, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn sample_data() -> Vec<f32> {
        (0..2048)
            .map(|i| {
                if i % 100 == 0 {
                    0.0
                } else {
                    ((i as f32) * 0.01).sin() * 10f32.powi((i % 7) - 3)
                }
            })
            .collect()
    }

    #[test]
    fn compress_decompress_verify_cycle() {
        let raw = tmp("cycle.f32");
        let stream = tmp("cycle.pwr");
        let restored = tmp("cycle_out.f32");
        io::write_f32(&raw, &sample_data()).unwrap();

        let msg = run_str(&format!(
            "compress -i {raw} -o {stream} --dims 2048 --bound 1e-3"
        ))
        .unwrap();
        assert!(msg.contains("ratio"), "{msg}");

        let msg = run_str(&format!("decompress -i {stream} -o {restored}")).unwrap();
        assert!(msg.contains("2048 values"), "{msg}");

        let msg = run_str(&format!(
            "verify -i {raw} -c {stream} --dims 2048 --bound 1e-3"
        ))
        .unwrap();
        assert!(msg.contains("verdict:       PASS"), "{msg}");

        // Decompressed file respects the bound.
        let a = io::read_f32(&raw).unwrap();
        let b = io::read_f32(&restored).unwrap();
        for (x, y) in a.iter().zip(&b) {
            if *x == 0.0 {
                assert_eq!(*y, 0.0);
            } else {
                assert!(((x - y) / x).abs() <= 1e-3);
            }
        }
    }

    #[test]
    fn every_registered_codec_cycles() {
        let data = sample_data();
        let raw = tmp("all.f32");
        io::write_f32(&raw, &data).unwrap();
        for codec in global().iter().map(|c| c.name()) {
            let stream = tmp(&format!("all_{codec}.pwr"));
            let restored = tmp(&format!("all_{codec}_out.f32"));
            run_str(&format!(
                "compress -i {raw} -o {stream} --dims 2048 --bound 1e-2 --codec {codec}"
            ))
            .unwrap_or_else(|e| panic!("{codec}: {e}"));
            run_str(&format!("decompress -i {stream} -o {restored}"))
                .unwrap_or_else(|e| panic!("{codec}: {e}"));
            assert_eq!(
                io::read_f32(&restored).unwrap().len(),
                data.len(),
                "{codec}"
            );
        }
    }

    #[test]
    fn info_identifies_streams() {
        let raw = tmp("info.f32");
        let stream = tmp("info.pwr");
        io::write_f32(&raw, &sample_data()).unwrap();
        run_str(&format!(
            "compress -i {raw} -o {stream} --dims 2048 --bound 1e-2"
        ))
        .unwrap();
        let msg = run_str(&format!("info -i {stream}")).unwrap();
        assert!(msg.contains("unified container: codec sz_t"), "{msg}");
        assert!(msg.contains("dims 2048"), "{msg}");
        assert!(
            msg.contains("entropy mode 4 (interleaved, 4 sub-streams)"),
            "{msg}"
        );
    }

    #[test]
    fn run_stream_round_trips_and_reports_pipeline() {
        let raw = tmp("stream.f32");
        let trace = tmp("stream_trace.json");
        io::write_f32(&raw, &sample_data()).unwrap();
        let msg = run_str(&format!(
            "run -i {raw} --dims 2048 --bound 1e-2 --stream --chunk-elems 256 \
             --workers 2 --window 3 --trace {trace} --stats"
        ))
        .unwrap();
        assert!(msg.contains("(streamed)"), "{msg}");
        assert!(msg.contains("in 8 chunks"), "{msg}");
        assert!(
            msg.contains("256 elems/chunk, 2 workers, window 3"),
            "{msg}"
        );
        assert!(msg.contains("ratio"), "{msg}");
        assert!(msg.contains("wall clock"), "{msg}");
        let json = std::fs::read_to_string(&trace).unwrap();
        for want in ["stream_compress", "stream_decompress", "chunk_compress"] {
            assert!(
                json.contains(&format!("\"name\":\"{want}\"")),
                "{want} missing from trace JSON"
            );
        }
    }

    #[test]
    fn run_stream_every_codec_and_f64() {
        let raw = tmp("stream_all.f32");
        io::write_f32(&raw, &sample_data()).unwrap();
        for codec in global().iter().map(|c| c.name()) {
            let msg = run_str(&format!(
                "run -i {raw} --dims 2048 --bound 1e-2 --stream --chunk-elems 512 --codec {codec}"
            ))
            .unwrap_or_else(|e| panic!("{codec}: {e}"));
            assert!(msg.contains("(streamed)"), "{codec}: {msg}");
        }
        let raw64 = tmp("stream_all.f64");
        let data: Vec<f64> = (1..1025).map(|i| (i as f64).sqrt()).collect();
        io::write_f64(&raw64, &data).unwrap();
        let msg = run_str(&format!(
            "run -i {raw64} --dims 1024 --bound 1e-3 --stream --chunk-elems 256 --type f64"
        ))
        .unwrap();
        assert!(msg.contains("in 4 chunks"), "{msg}");
    }

    #[test]
    fn run_stream_rejects_wrong_file_length() {
        let raw = tmp("stream_short.f32");
        io::write_f32(&raw, &sample_data()).unwrap();
        let err = run_str(&format!("run -i {raw} --dims 4096 --bound 1e-2 --stream"));
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
    }

    #[test]
    fn info_identifies_framed_streams() {
        use pwrel_pipeline::SliceSource;
        let path = tmp("framed_info.pws");
        let data = sample_data();
        let mut src = SliceSource::new(&data[..]);
        let mut bytes = Vec::new();
        global()
            .compress_stream::<f32>(
                "sz_t",
                &mut src,
                &mut bytes,
                Dims::d1(data.len()),
                &CompressOpts::rel(1e-2),
                512,
            )
            .unwrap();
        std::fs::write(&path, &bytes).unwrap();
        let msg = run_str(&format!("info -i {path}")).unwrap();
        assert!(msg.contains("framed stream: codec sz_t"), "{msg}");
        assert!(msg.contains("4 chunks"), "{msg}");
        assert!(msg.contains("dims 2048"), "{msg}");
        assert!(
            msg.contains("entropy mode 4 (interleaved, 4 sub-streams)"),
            "{msg}"
        );
    }

    #[test]
    fn info_identifies_legacy_streams() {
        use pwrel_core::{LogBase, PwRelCompressor};
        use pwrel_sz::SzCompressor;
        let stream = tmp("legacy_info.pwt");
        let data = sample_data();
        let bytes = PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
            .compress_fused(&data, Dims::d1(data.len()), 1e-2)
            .unwrap();
        std::fs::write(&stream, &bytes).unwrap();
        let msg = run_str(&format!("info -i {stream}")).unwrap();
        assert!(
            msg.contains("legacy pwrel log-transform container"),
            "{msg}"
        );
    }

    #[test]
    fn legacy_stream_decompresses() {
        use pwrel_core::{LogBase, PwRelCompressor};
        use pwrel_sz::SzCompressor;
        let stream = tmp("legacy.pwt");
        let restored = tmp("legacy_out.f32");
        let data = sample_data();
        let bytes = PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
            .compress_fused(&data, Dims::d1(data.len()), 1e-3)
            .unwrap();
        std::fs::write(&stream, &bytes).unwrap();
        run_str(&format!("decompress -i {stream} -o {restored}")).unwrap();
        assert_eq!(io::read_f32(&restored).unwrap().len(), data.len());
    }

    #[test]
    fn codecs_lists_registry() {
        let msg = run_str("codecs").unwrap();
        for name in [
            "sz_t",
            "sz_hybrid_t",
            "zfp_t",
            "sz_abs",
            "sz_pwr",
            "fpzip",
            "isabela",
            "zfp_p",
        ] {
            assert!(msg.contains(name), "missing {name} in {msg}");
        }
    }

    #[test]
    fn dims_mismatch_is_usage_error() {
        let raw = tmp("mm.f32");
        let stream = tmp("mm.pwr");
        let _ = std::fs::remove_file(&stream);
        io::write_f32(&raw, &sample_data()).unwrap();
        let err = run_str(&format!(
            "compress -i {raw} -o {stream} --dims 1000 --bound 1e-2"
        ));
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
        // The bad stream must not have been written.
        assert!(!std::path::Path::new(&stream).exists());
    }

    #[test]
    fn f64_cycle() {
        let raw = tmp("d.f64");
        let stream = tmp("d.pwr");
        let restored = tmp("d_out.f64");
        let data: Vec<f64> = (1..500).map(|i| (i as f64).sqrt() * 1e100).collect();
        io::write_f64(&raw, &data).unwrap();
        run_str(&format!(
            "compress -i {raw} -o {stream} --dims 499 --bound 1e-4 --type f64"
        ))
        .unwrap();
        run_str(&format!("decompress -i {stream} -o {restored} --type f64")).unwrap();
        let back = io::read_f64(&restored).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!(((a - b) / a).abs() <= 1e-4);
        }
    }

    #[test]
    fn pack_list_unpack_cycle() {
        let a = tmp("snap_a.f32");
        let b = tmp("snap_b.f32");
        let arch = tmp("snap.pwa");
        let outdir = tmp("snap_out");
        io::write_f32(&a, &sample_data()).unwrap();
        let small: Vec<f32> = (0..512).map(|i| (i as f32 + 1.0).sqrt()).collect();
        io::write_f32(&b, &small).unwrap();

        let msg = run_str(&format!("pack -o {arch} --bound 1e-2 {a}:2048 {b}:16x32")).unwrap();
        assert!(msg.contains("2 fields"), "{msg}");

        let msg = run_str(&format!("list -i {arch}")).unwrap();
        assert!(msg.contains("snap_a") && msg.contains("snap_b"), "{msg}");
        assert!(msg.contains("16x32"), "{msg}");

        run_str(&format!("unpack -i {arch} -o {outdir}")).unwrap();
        let restored_a = io::read_f32(format!("{outdir}/snap_a.f32")).unwrap();
        assert_eq!(restored_a.len(), 2048);
        let restored_b = io::read_f32(format!("{outdir}/snap_b.f32")).unwrap();
        for (x, y) in small.iter().zip(&restored_b) {
            assert!(((x - y) / x).abs() <= 1e-2);
        }
    }

    #[test]
    fn pack_without_specs_is_usage_error() {
        let arch = tmp("empty.pwa");
        let err = run_str(&format!("pack -o {arch} --bound 1e-2"));
        assert!(matches!(err, Err(CliError::Usage(_))));
        let err = run_str(&format!("pack -o {arch} --bound 1e-2 nodims"));
        assert!(matches!(err, Err(CliError::Usage(_))));
    }

    #[test]
    fn run_emits_valid_trace_covering_declared_stages() {
        let raw = tmp("trace.f32");
        let trace = tmp("trace.json");
        io::write_f32(&raw, &sample_data()).unwrap();
        for codec in global().iter() {
            let msg = run_str(&format!(
                "run -i {raw} --dims 2048 --bound 1e-2 --codec {} --trace {trace} --stats",
                codec.name()
            ))
            .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
            assert!(msg.contains("ratio"), "{msg}");
            assert!(msg.contains("trace written to"), "{msg}");
            // --stats table names the wall clock row.
            assert!(msg.contains("wall clock"), "{msg}");

            let json = std::fs::read_to_string(&trace).unwrap();
            assert!(json.contains("\"traceEvents\""), "{}", codec.name());
            // Every stage the registry declares for this codec appears
            // as a span name in the exported trace.
            for want in codec.stages() {
                assert!(
                    json.contains(&format!("\"name\":\"{want}\"")),
                    "{}: stage {want:?} missing from trace JSON",
                    codec.name()
                );
            }
            for root in ["compress", "decompress"] {
                assert!(
                    json.contains(&format!("\"name\":\"{root}\"")),
                    "{}: root {root:?} missing",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn run_stats_totals_reconcile_with_wall_clock() {
        let raw = tmp("recon.f32");
        io::write_f32(&raw, &sample_data()).unwrap();
        let msg = run_str(&format!("run -i {raw} --dims 2048 --bound 1e-3 --stats")).unwrap();
        // "traced: X ms of Y ms wall (Z%)" — the root spans must account
        // for at least 95% of the sink's wall clock.
        let line = msg
            .lines()
            .find(|l| l.starts_with("traced:"))
            .unwrap_or_else(|| panic!("no reconciliation line in {msg}"));
        let pct: f64 = line
            .rsplit_once('(')
            .and_then(|(_, tail)| tail.strip_suffix("%)"))
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("bad reconciliation line {line}"));
        assert!(pct >= 95.0, "root spans cover only {pct}% of wall: {msg}");
    }

    /// Spawns a server on an ephemeral port for the remote tests.
    fn spawn_server() -> pwrel_serve::ServerHandle {
        let cfg = pwrel_serve::ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..Default::default()
        };
        pwrel_serve::Server::bind(cfg).unwrap().spawn().unwrap()
    }

    #[test]
    fn remote_round_trip_matches_local_verify() {
        let handle = spawn_server();
        let addr = handle.addr();
        let raw = tmp("remote.f32");
        let stream = tmp("remote.pws");
        let restored = tmp("remote_out.f32");
        io::write_f32(&raw, &sample_data()).unwrap();

        let msg = run_str(&format!(
            "remote compress -i {raw} -o {stream} --dims 2048 --bound 1e-3 \
             --chunk-elems 512 --server {addr}"
        ))
        .unwrap();
        assert!(msg.contains("ratio"), "{msg}");

        let msg = run_str(&format!(
            "remote decompress -i {stream} -o {restored} --server {addr}"
        ))
        .unwrap();
        assert!(msg.contains("8192 raw bytes"), "{msg}");

        // The server-produced stream verifies locally against the bound.
        let msg = run_str(&format!(
            "verify -i {raw} -c {stream} --dims 2048 --bound 1e-3"
        ))
        .unwrap();
        assert!(msg.contains("verdict:       PASS"), "{msg}");

        // Remote info identifies the framed stream.
        let msg = run_str(&format!("remote info -i {stream} --server {addr}")).unwrap();
        assert!(msg.contains("framed"), "{msg}");
    }

    #[test]
    fn remote_simple_actions() {
        let handle = spawn_server();
        let addr = handle.addr();
        let msg = run_str(&format!("remote ping --server {addr}")).unwrap();
        assert!(msg.contains("ok (protocol v1)"), "{msg}");
        let msg = run_str(&format!("remote codecs --server {addr}")).unwrap();
        assert!(msg.contains("sz_t") && msg.contains("zfp_p"), "{msg}");
        let msg = run_str(&format!("remote metrics --server {addr}")).unwrap();
        assert!(msg.contains("pwrp_requests_total"), "{msg}");
    }

    #[test]
    fn remote_compress_rejects_wrong_file_length() {
        let handle = spawn_server();
        let addr = handle.addr();
        let raw = tmp("remote_short.f32");
        io::write_f32(&raw, &sample_data()).unwrap();
        let err = run_str(&format!(
            "remote compress -i {raw} -o /dev/null --dims 4096 --bound 1e-2 --server {addr}"
        ));
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
    }

    #[test]
    fn remote_connect_failure_is_serve_error() {
        // Port 1 on localhost refuses connections.
        let err = run_str("remote ping --server 127.0.0.1:1");
        assert!(matches!(err, Err(CliError::Serve(_))), "{err:?}");
    }

    #[test]
    fn verify_fails_on_wrong_bound_claim() {
        let raw = tmp("vf.f32");
        let stream = tmp("vf.pwr");
        io::write_f32(&raw, &sample_data()).unwrap();
        run_str(&format!(
            "compress -i {raw} -o {stream} --dims 2048 --bound 1e-1"
        ))
        .unwrap();
        // Claim a tighter bound than was used: must FAIL.
        let msg = run_str(&format!(
            "verify -i {raw} -c {stream} --dims 2048 --bound 1e-4"
        ))
        .unwrap();
        assert!(msg.contains("verdict:       FAIL"), "{msg}");
    }
}
