//! Hand-rolled argument parsing (no external dependencies).

use crate::CliError;
use pwrel_core::LogBase;
use pwrel_data::Dims;

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
pwrel — point-wise relative-error-bounded lossy compression

USAGE:
  pwrel compress   -i <raw> -o <stream> --dims <NX|NYxNX|NZxNYxNX> --bound <b>
                   [--codec <name>] [--type f32|f64] [--base 2|e|10]
  pwrel decompress -i <stream> -o <raw>
  pwrel info       -i <stream>
  pwrel codecs
  pwrel verify     -i <raw> -c <stream> --dims <...> --bound <b> [--type f32|f64]
  pwrel pack       -o <archive> --bound <b> [--codec <name>] <raw>:<dims> ...
  pwrel unpack     -i <archive> -o <dir>
  pwrel list       -i <archive>
  pwrel run        -i <raw> --dims <...> --bound <b> [--codec <name>]
                   [--type f32|f64] [--base 2|e|10] [--trace <out.json>] [--stats]
                   [--stream] [--chunk-elems <n>] [--workers <n>] [--window <n>]
  pwrel serve      [--addr <host:port>] [--workers <n>] [--inflight <n>]
                   [--max-conns <n>] [--quota <bytes>] [--max-elems <n>]
                   [--timeout-ms <ms>] [--window <n>] [--chunk-elems <n>]
  pwrel remote     <compress|decompress|info|codecs|metrics|ping>
                   [--server <host:port>] (plus the matching local flags)

  compress   raw little-endian floats -> compressed stream (default codec sz_t)
  decompress compressed stream -> raw little-endian floats (codec auto-detected)
  info       print stream kind and sizes
  codecs     list every registered codec
  verify     decompress and report error statistics against the original
  pack       bundle several fields into one snapshot archive
  unpack     extract every field of an archive into a directory
  list       show an archive's contents
  run        instrumented compress+decompress round trip; --trace writes
             Chrome trace_event JSON (chrome://tracing / Perfetto) and
             --stats prints the per-stage summary table; --stream runs the
             chunk-pipelined out-of-core path (framed stream, bounded
             memory) with optional --chunk-elems / --workers / --window
  serve      run the PWRP/1 compression service (protocol: PROTOCOL.md,
             runbook: OPERATIONS.md); serves until killed
  remote     run compress/decompress/info/codecs/metrics/ping against a
             running pwrel-serve (--server defaults to 127.0.0.1:9474);
             remote compress takes the same flags as local compress plus
             an optional --chunk-elems

EXAMPLES:
  pwrel compress -i snap.f32 -o snap.pwr --dims 512x512x512 --bound 1e-3
  pwrel run -i snap.f32 --dims 512x512x512 --bound 1e-3 --trace snap.json --stats
";

/// Element type of the raw file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    /// 4-byte little-endian IEEE floats.
    F32,
    /// 8-byte little-endian IEEE floats.
    F64,
}

/// A parsed command.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `pwrel compress`.
    Compress {
        /// Raw input path.
        input: String,
        /// Stream output path.
        output: String,
        /// Grid shape.
        dims: Dims,
        /// Error bound (interpretation depends on the codec).
        bound: f64,
        /// Registered codec name.
        codec: String,
        /// Element type.
        elem: ElemType,
        /// Log base for the transform codecs.
        base: LogBase,
    },
    /// `pwrel decompress`.
    Decompress {
        /// Stream input path.
        input: String,
        /// Raw output path.
        output: String,
        /// Element type expected in the stream.
        elem: ElemType,
    },
    /// `pwrel info`.
    Info {
        /// Stream path.
        input: String,
    },
    /// `pwrel codecs`.
    Codecs,
    /// `pwrel pack`.
    Pack {
        /// Archive output path.
        output: String,
        /// Error bound for every field.
        bound: f64,
        /// Registered codec name.
        codec: String,
        /// Element type.
        elem: ElemType,
        /// Log base.
        base: LogBase,
        /// `(path, dims)` field specs.
        inputs: Vec<(String, Dims)>,
    },
    /// `pwrel unpack`.
    Unpack {
        /// Archive input path.
        input: String,
        /// Output directory.
        output: String,
    },
    /// `pwrel list`.
    List {
        /// Archive path.
        input: String,
    },
    /// `pwrel run`.
    Run {
        /// Raw input path.
        input: String,
        /// Grid shape.
        dims: Dims,
        /// Error bound (interpretation depends on the codec).
        bound: f64,
        /// Registered codec name.
        codec: String,
        /// Element type.
        elem: ElemType,
        /// Log base for the transform codecs.
        base: LogBase,
        /// Chrome trace_event JSON output path, if requested.
        trace: Option<String>,
        /// Print the per-stage summary table.
        stats: bool,
        /// Round trip through the chunk-pipelined streaming path
        /// (framed stream, bounded memory) instead of one-shot buffers.
        stream: bool,
        /// Elements per chunk for the streaming path (default ~4 MiB of
        /// elements, clamped to the field).
        chunk_elems: Option<usize>,
        /// Worker thread count for the streaming path (default: one per
        /// CPU).
        workers: Option<usize>,
        /// In-flight chunk window for the streaming path (default: two
        /// per worker).
        window: Option<usize>,
    },
    /// `pwrel serve`: run the PWRP/1 service in the foreground. Flags
    /// pass through verbatim to `pwrel_serve::ServeConfig::from_args`,
    /// so the subcommand and the standalone `pwrel-serve` binary accept
    /// the same set.
    Serve {
        /// Raw flag tokens after `serve`.
        args: Vec<String>,
    },
    /// `pwrel remote`: drive a running server over PWRP/1.
    Remote {
        /// Server address (`host:port`).
        server: String,
        /// The remote action.
        action: RemoteAction,
    },
    /// `pwrel verify`.
    Verify {
        /// Raw original path.
        input: String,
        /// Compressed stream path.
        stream: String,
        /// Grid shape of the original.
        dims: Dims,
        /// Bound to check against.
        bound: f64,
        /// Element type.
        elem: ElemType,
    },
}

/// One `pwrel remote` action.
#[derive(Debug, PartialEq)]
pub enum RemoteAction {
    /// Compress a raw file through the server.
    Compress {
        /// Raw input path.
        input: String,
        /// Stream output path.
        output: String,
        /// Grid shape.
        dims: Dims,
        /// Error bound (interpretation depends on the codec).
        bound: f64,
        /// Registered codec name (validated locally; the server decides).
        codec: String,
        /// Element type.
        elem: ElemType,
        /// Log base for the transform codecs.
        base: LogBase,
        /// Elements per PWS1 chunk (None = server default).
        chunk_elems: Option<usize>,
    },
    /// Decompress a PWS1 stream through the server.
    Decompress {
        /// Stream input path.
        input: String,
        /// Raw output path.
        output: String,
    },
    /// Ask the server to identify a stream's leading bytes.
    Info {
        /// Stream path.
        input: String,
    },
    /// Print the server's codec listing.
    Codecs,
    /// Print the server's metrics exposition.
    Metrics,
    /// Liveness probe.
    Ping,
}

/// Top-level parsed CLI.
#[derive(Debug, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(format!("{}\n\n{USAGE}", msg.into()))
}

/// Parses `NX`, `NYxNX` or `NZxNYxNX` (also accepts `X` separators in
/// upper case).
pub fn parse_dims(s: &str) -> Result<Dims, CliError> {
    let parts: Vec<&str> = s.split(['x', 'X']).collect();
    let nums: Result<Vec<usize>, _> = parts.iter().map(|p| p.parse::<usize>()).collect();
    let nums = nums.map_err(|_| usage_err(format!("bad --dims value '{s}'")))?;
    match nums.as_slice() {
        [nx] => Ok(Dims::d1(*nx)),
        [ny, nx] => Ok(Dims::d2(*ny, *nx)),
        [nz, ny, nx] => Ok(Dims::d3(*nz, *ny, *nx)),
        _ => Err(usage_err(format!("bad --dims value '{s}' (1-3 extents)"))),
    }
}

/// Validates a `--codec` name against the registry at parse time, so the
/// error arrives before any file is read.
fn parse_codec(s: &str) -> Result<String, CliError> {
    if pwrel_pipeline::global().by_name(s).is_none() {
        let known: Vec<&str> = pwrel_pipeline::global().iter().map(|c| c.name()).collect();
        return Err(usage_err(format!(
            "unknown --codec '{s}' (known: {})",
            known.join(", ")
        )));
    }
    Ok(s.to_string())
}

fn parse_base(s: &str) -> Result<LogBase, CliError> {
    match s {
        "2" => Ok(LogBase::Two),
        "e" => Ok(LogBase::E),
        "10" => Ok(LogBase::Ten),
        _ => Err(usage_err(format!("unknown --base '{s}' (2|e|10)"))),
    }
}

/// Parses an optional positive-count flag (`--workers 4`); zero is a
/// usage error, not a silent fallback.
fn parse_count(flags: &Flags, name: &str) -> Result<Option<usize>, CliError> {
    match flags.get(&[name]) {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(0) | Err(_) => Err(usage_err(format!("bad {name} value '{s}' (want >= 1)"))),
            Ok(n) => Ok(Some(n)),
        },
    }
}

fn parse_elem(s: &str) -> Result<ElemType, CliError> {
    match s {
        "f32" => Ok(ElemType::F32),
        "f64" => Ok(ElemType::F64),
        _ => Err(usage_err(format!("unknown --type '{s}' (f32|f64)"))),
    }
}

/// Flags that take no value; everything else consumes the next token.
const BOOLEAN_FLAGS: &[&str] = &["--stats", "--stream"];

/// Collects `--flag value` / `-f value` pairs, boolean flags, and
/// positional arguments.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut positionals = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if !arg.starts_with('-') {
                positionals.push(arg.clone());
                continue;
            }
            if BOOLEAN_FLAGS.contains(&arg.as_str()) {
                switches.push(arg.clone());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| usage_err(format!("flag '{arg}' needs a value")))?;
            pairs.push((arg.clone(), value.clone()));
        }
        Ok(Self {
            pairs,
            switches,
            positionals,
        })
    }

    fn get(&self, names: &[&str]) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| names.contains(&f.as_str()))
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn require(&self, names: &[&str], what: &str) -> Result<&str, CliError> {
        self.get(names)
            .ok_or_else(|| usage_err(format!("missing required {what} ({})", names.join("/"))))
    }
}

impl Cli {
    /// Parses a full argument vector (excluding the program name).
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let (cmd, rest) = args
            .split_first()
            .ok_or_else(|| usage_err("missing command"))?;
        if cmd == "--help" || cmd == "-h" || cmd == "help" {
            return Err(CliError::Usage(USAGE.to_string()));
        }
        if cmd == "serve" {
            // Flags pass through verbatim: ServeConfig::from_args owns
            // their validation so `pwrel serve` and the standalone
            // binary cannot drift.
            return Ok(Cli {
                command: Command::Serve {
                    args: rest.to_vec(),
                },
            });
        }
        let flags = Flags::parse(rest)?;
        let elem = flags
            .get(&["--type"])
            .map_or(Ok(ElemType::F32), parse_elem)?;
        let command = match cmd.as_str() {
            "compress" => Command::Compress {
                input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                output: flags
                    .require(&["-o", "--output"], "output path")?
                    .to_string(),
                dims: parse_dims(flags.require(&["--dims"], "--dims")?)?,
                bound: flags
                    .require(&["--bound", "-b"], "--bound")?
                    .parse::<f64>()
                    .map_err(|_| usage_err("bad --bound value"))?,
                codec: flags
                    .get(&["--codec"])
                    .map_or(Ok("sz_t".to_string()), parse_codec)?,
                elem,
                base: flags
                    .get(&["--base"])
                    .map_or(Ok(LogBase::Two), parse_base)?,
            },
            "decompress" => Command::Decompress {
                input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                output: flags
                    .require(&["-o", "--output"], "output path")?
                    .to_string(),
                elem,
            },
            "info" => Command::Info {
                input: flags.require(&["-i", "--input"], "input path")?.to_string(),
            },
            "codecs" => Command::Codecs,
            "pack" => {
                if flags.positionals.is_empty() {
                    return Err(usage_err("pack needs at least one <raw>:<dims> spec"));
                }
                let mut inputs = Vec::new();
                for spec in &flags.positionals {
                    let (path, dims_str) = spec.rsplit_once(':').ok_or_else(|| {
                        usage_err(format!("bad field spec '{spec}' (want path:dims)"))
                    })?;
                    inputs.push((path.to_string(), parse_dims(dims_str)?));
                }
                Command::Pack {
                    output: flags
                        .require(&["-o", "--output"], "output path")?
                        .to_string(),
                    bound: flags
                        .require(&["--bound", "-b"], "--bound")?
                        .parse::<f64>()
                        .map_err(|_| usage_err("bad --bound value"))?,
                    codec: flags
                        .get(&["--codec"])
                        .map_or(Ok("sz_t".to_string()), parse_codec)?,
                    elem,
                    base: flags
                        .get(&["--base"])
                        .map_or(Ok(LogBase::Two), parse_base)?,
                    inputs,
                }
            }
            "unpack" => Command::Unpack {
                input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                output: flags
                    .require(&["-o", "--output"], "output dir")?
                    .to_string(),
            },
            "list" => Command::List {
                input: flags.require(&["-i", "--input"], "input path")?.to_string(),
            },
            "run" => Command::Run {
                input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                dims: parse_dims(flags.require(&["--dims"], "--dims")?)?,
                bound: flags
                    .require(&["--bound", "-b"], "--bound")?
                    .parse::<f64>()
                    .map_err(|_| usage_err("bad --bound value"))?,
                codec: flags
                    .get(&["--codec"])
                    .map_or(Ok("sz_t".to_string()), parse_codec)?,
                elem,
                base: flags
                    .get(&["--base"])
                    .map_or(Ok(LogBase::Two), parse_base)?,
                trace: flags.get(&["--trace"]).map(|s| s.to_string()),
                stats: flags.has("--stats"),
                stream: flags.has("--stream"),
                chunk_elems: parse_count(&flags, "--chunk-elems")?,
                workers: parse_count(&flags, "--workers")?,
                window: parse_count(&flags, "--window")?,
            },
            "remote" => {
                let action_name = flags.positionals.first().ok_or_else(|| {
                    usage_err(
                        "remote needs an action (compress|decompress|info|codecs|metrics|ping)",
                    )
                })?;
                let action = match action_name.as_str() {
                    "compress" => RemoteAction::Compress {
                        input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                        output: flags
                            .require(&["-o", "--output"], "output path")?
                            .to_string(),
                        dims: parse_dims(flags.require(&["--dims"], "--dims")?)?,
                        bound: flags
                            .require(&["--bound", "-b"], "--bound")?
                            .parse::<f64>()
                            .map_err(|_| usage_err("bad --bound value"))?,
                        codec: flags
                            .get(&["--codec"])
                            .map_or(Ok("sz_t".to_string()), parse_codec)?,
                        elem,
                        base: flags
                            .get(&["--base"])
                            .map_or(Ok(LogBase::Two), parse_base)?,
                        chunk_elems: parse_count(&flags, "--chunk-elems")?,
                    },
                    "decompress" => RemoteAction::Decompress {
                        input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                        output: flags
                            .require(&["-o", "--output"], "output path")?
                            .to_string(),
                    },
                    "info" => RemoteAction::Info {
                        input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                    },
                    "codecs" => RemoteAction::Codecs,
                    "metrics" => RemoteAction::Metrics,
                    "ping" => RemoteAction::Ping,
                    other => {
                        return Err(usage_err(format!(
                            "unknown remote action '{other}' \
                             (compress|decompress|info|codecs|metrics|ping)"
                        )))
                    }
                };
                Command::Remote {
                    server: flags
                        .get(&["--server"])
                        .unwrap_or("127.0.0.1:9474")
                        .to_string(),
                    action,
                }
            }
            "verify" => Command::Verify {
                input: flags.require(&["-i", "--input"], "input path")?.to_string(),
                stream: flags
                    .require(&["-c", "--compressed"], "stream path")?
                    .to_string(),
                dims: parse_dims(flags.require(&["--dims"], "--dims")?)?,
                bound: flags
                    .require(&["--bound", "-b"], "--bound")?
                    .parse::<f64>()
                    .map_err(|_| usage_err("bad --bound value"))?,
                elem,
            },
            other => return Err(usage_err(format!("unknown command '{other}'"))),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parse_dims_variants() {
        assert_eq!(parse_dims("100").unwrap(), Dims::d1(100));
        assert_eq!(parse_dims("5x7").unwrap(), Dims::d2(5, 7));
        assert_eq!(parse_dims("2X3X4").unwrap(), Dims::d3(2, 3, 4));
        assert!(parse_dims("").is_err());
        assert!(parse_dims("axb").is_err());
        assert!(parse_dims("1x2x3x4").is_err());
    }

    #[test]
    fn compress_command_full() {
        let cli = Cli::parse(&argv(
            "compress -i in.f32 -o out.pwr --dims 4x5x6 --bound 1e-3 --codec zfp_t --base e --type f64",
        ))
        .unwrap();
        match cli.command {
            Command::Compress {
                dims,
                bound,
                codec,
                elem,
                base,
                ..
            } => {
                assert_eq!(dims, Dims::d3(4, 5, 6));
                assert_eq!(bound, 1e-3);
                assert_eq!(codec, "zfp_t");
                assert_eq!(elem, ElemType::F64);
                assert_eq!(base, LogBase::E);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn compress_defaults() {
        let cli = Cli::parse(&argv("compress -i a -o b --dims 10 --bound 0.01")).unwrap();
        match cli.command {
            Command::Compress {
                codec, elem, base, ..
            } => {
                assert_eq!(codec, "sz_t");
                assert_eq!(elem, ElemType::F32);
                assert_eq!(base, LogBase::Two);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(Cli::parse(&argv("compress -i a -o b --bound 0.01")).is_err());
        assert!(Cli::parse(&argv("compress -i a --dims 10 --bound 0.01")).is_err());
        assert!(Cli::parse(&argv("verify -i a --dims 10 --bound 0.01")).is_err());
        assert!(Cli::parse(&argv("nonsense")).is_err());
        assert!(Cli::parse(&[]).is_err());
    }

    #[test]
    fn decompress_and_info() {
        assert_eq!(
            Cli::parse(&argv("decompress -i s -o r")).unwrap().command,
            Command::Decompress {
                input: "s".into(),
                output: "r".into(),
                elem: ElemType::F32
            }
        );
        assert_eq!(
            Cli::parse(&argv("info -i s")).unwrap().command,
            Command::Info { input: "s".into() }
        );
    }

    #[test]
    fn unknown_codec_rejected_with_listing() {
        match Cli::parse(&argv(
            "compress -i a -o b --dims 10 --bound 0.01 --codec nope",
        )) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("known:") && msg.contains("zfp_p"), "{msg}")
            }
            other => panic!("expected usage, got {other:?}"),
        }
    }

    #[test]
    fn run_command_with_trace_and_stats() {
        let cli = Cli::parse(&argv(
            "run -i in.f32 --dims 8x16 --bound 1e-2 --codec zfp_t --trace out.json --stats",
        ))
        .unwrap();
        match cli.command {
            Command::Run {
                dims,
                bound,
                codec,
                trace,
                stats,
                ..
            } => {
                assert_eq!(dims, Dims::d2(8, 16));
                assert_eq!(bound, 1e-2);
                assert_eq!(codec, "zfp_t");
                assert_eq!(trace.as_deref(), Some("out.json"));
                assert!(stats);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn run_command_defaults() {
        // --stats is a boolean flag: it must not swallow the next token.
        let cli = Cli::parse(&argv("run --stats -i a --dims 10 --bound 0.01")).unwrap();
        match cli.command {
            Command::Run {
                input,
                codec,
                trace,
                stats,
                ..
            } => {
                assert_eq!(input, "a");
                assert_eq!(codec, "sz_t");
                assert_eq!(trace, None);
                assert!(stats);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn run_command_streaming_flags() {
        let cli = Cli::parse(&argv(
            "run -i a --dims 64x64 --bound 1e-2 --stream --chunk-elems 1024 --workers 2 --window 6",
        ))
        .unwrap();
        match cli.command {
            Command::Run {
                stream,
                chunk_elems,
                workers,
                window,
                ..
            } => {
                assert!(stream);
                assert_eq!(chunk_elems, Some(1024));
                assert_eq!(workers, Some(2));
                assert_eq!(window, Some(6));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn run_streaming_defaults_off() {
        // --stream is boolean: it must not swallow the next token, and
        // the tuning knobs default to None.
        let cli = Cli::parse(&argv("run --stream -i a --dims 10 --bound 0.01")).unwrap();
        match cli.command {
            Command::Run {
                input,
                stream,
                chunk_elems,
                workers,
                window,
                ..
            } => {
                assert_eq!(input, "a");
                assert!(stream);
                assert_eq!(chunk_elems, None);
                assert_eq!(workers, None);
                assert_eq!(window, None);
            }
            _ => panic!("wrong command"),
        }
        match Cli::parse(&argv("run -i a --dims 10 --bound 0.01"))
            .unwrap()
            .command
        {
            Command::Run { stream, .. } => assert!(!stream),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn zero_counts_are_usage_errors() {
        for flag in ["--chunk-elems", "--workers", "--window"] {
            let err = Cli::parse(&argv(&format!("run -i a --dims 10 --bound 0.01 {flag} 0")));
            assert!(matches!(err, Err(CliError::Usage(_))), "{flag} 0: {err:?}");
            let err = Cli::parse(&argv(&format!("run -i a --dims 10 --bound 0.01 {flag} x")));
            assert!(matches!(err, Err(CliError::Usage(_))), "{flag} x: {err:?}");
        }
    }

    #[test]
    fn codecs_command_parses() {
        assert_eq!(
            Cli::parse(&argv("codecs")).unwrap().command,
            Command::Codecs
        );
    }

    #[test]
    fn serve_passes_flags_through_verbatim() {
        let cli = Cli::parse(&argv("serve --addr 127.0.0.1:0 --inflight 2")).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                args: argv("--addr 127.0.0.1:0 --inflight 2")
            }
        );
        // Even unknown flags pass through; ServeConfig::from_args rejects
        // them later with its own message.
        assert!(Cli::parse(&argv("serve --wat 1")).is_ok());
    }

    #[test]
    fn remote_actions_parse() {
        let cli = Cli::parse(&argv(
            "remote compress -i a.f32 -o a.pwr --dims 8x8 --bound 1e-3 \
             --codec zfp_t --type f64 --base 10 --chunk-elems 32 --server 10.0.0.1:9999",
        ))
        .unwrap();
        match cli.command {
            Command::Remote { server, action } => {
                assert_eq!(server, "10.0.0.1:9999");
                match action {
                    RemoteAction::Compress {
                        dims,
                        bound,
                        codec,
                        elem,
                        base,
                        chunk_elems,
                        ..
                    } => {
                        assert_eq!(dims, Dims::d2(8, 8));
                        assert_eq!(bound, 1e-3);
                        assert_eq!(codec, "zfp_t");
                        assert_eq!(elem, ElemType::F64);
                        assert_eq!(base, LogBase::Ten);
                        assert_eq!(chunk_elems, Some(32));
                    }
                    other => panic!("wrong action {other:?}"),
                }
            }
            _ => panic!("wrong command"),
        }
        // Default server address, simple actions.
        match Cli::parse(&argv("remote ping")).unwrap().command {
            Command::Remote { server, action } => {
                assert_eq!(server, "127.0.0.1:9474");
                assert_eq!(action, RemoteAction::Ping);
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            Cli::parse(&argv("remote codecs")).unwrap().command,
            Command::Remote {
                action: RemoteAction::Codecs,
                ..
            }
        ));
        assert!(matches!(
            Cli::parse(&argv("remote metrics")).unwrap().command,
            Command::Remote {
                action: RemoteAction::Metrics,
                ..
            }
        ));
    }

    #[test]
    fn remote_rejects_bad_actions() {
        assert!(matches!(
            Cli::parse(&argv("remote")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Cli::parse(&argv("remote teleport")),
            Err(CliError::Usage(_))
        ));
        // remote compress shares required flags with local compress.
        assert!(Cli::parse(&argv("remote compress -i a -o b --bound 1e-3")).is_err());
    }

    #[test]
    fn help_is_usage_error_with_text() {
        match Cli::parse(&argv("--help")) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("USAGE")),
            other => panic!("expected usage, got {other:?}"),
        }
    }
}
