//! Raw little-endian float file I/O and stream identification.

use crate::CliError;
use std::fs;
use std::path::Path;

/// Reads a raw little-endian `f32` file.
pub fn read_f32(path: impl AsRef<Path>) -> Result<Vec<f32>, CliError> {
    let bytes = fs::read(path)?;
    if bytes.len() % 4 != 0 {
        return Err(CliError::Usage("f32 file length is not a multiple of 4".into()));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Reads a raw little-endian `f64` file.
pub fn read_f64(path: impl AsRef<Path>) -> Result<Vec<f64>, CliError> {
    let bytes = fs::read(path)?;
    if bytes.len() % 8 != 0 {
        return Err(CliError::Usage("f64 file length is not a multiple of 8".into()));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Writes a raw little-endian `f32` file.
pub fn write_f32(path: impl AsRef<Path>, data: &[f32]) -> Result<(), CliError> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    fs::write(path, out)?;
    Ok(())
}

/// Writes a raw little-endian `f64` file.
pub fn write_f64(path: impl AsRef<Path>, data: &[f64]) -> Result<(), CliError> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    fs::write(path, out)?;
    Ok(())
}

/// Stream kinds recognisable from magic bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Log-transform container (SZ_T / ZFP_T).
    PwRel,
    /// Bare SZ container (possibly inside an LZ wrapper).
    Sz,
    /// ZFP container.
    Zfp,
    /// FPZIP container.
    Fpzip,
    /// ISABELA container.
    Isabela,
}

/// Identifies a compressed stream from its leading bytes.
pub fn identify(bytes: &[u8]) -> Option<StreamKind> {
    if bytes.len() >= 4 {
        match &bytes[..4] {
            b"PWT1" => return Some(StreamKind::PwRel),
            b"ZFR1" => return Some(StreamKind::Zfp),
            b"FPZ1" => return Some(StreamKind::Fpzip),
            b"ISB1" => return Some(StreamKind::Isabela),
            _ => {}
        }
    }
    // SZ streams carry a 1-byte LZ wrapper flag before the magic.
    if bytes.len() >= 5 && (bytes[0] == 0 || bytes[0] == 1) {
        // Raw wrapper exposes the magic directly; the LZ wrapper does not,
        // so try decoding its header.
        if bytes[0] == 0 && &bytes[1..5] == b"SZR1" {
            return Some(StreamKind::Sz);
        }
        if bytes[0] == 1 {
            if let Ok(unpacked) = pwrel_lossless_decompress_prefix(&bytes[1..]) {
                if unpacked.len() >= 4 && &unpacked[..4] == b"SZR1" {
                    return Some(StreamKind::Sz);
                }
            }
        }
    }
    None
}

/// Decompresses an LZ-wrapped prefix to sniff the magic. `identify` is
/// only called on files the user explicitly passed in, so a full decode is
/// acceptable.
fn pwrel_lossless_decompress_prefix(bytes: &[u8]) -> Result<Vec<u8>, CliError> {
    pwrel_lossless::lz::decompress(bytes)
        .map_err(|e| CliError::Codec(pwrel_data::CodecError::from(e)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_file_round_trip() {
        let dir = std::env::temp_dir().join("pwrel_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("a.f32");
        let data = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE];
        write_f32(&p, &data).unwrap();
        assert_eq!(read_f32(&p).unwrap(), data);
    }

    #[test]
    fn f64_file_round_trip() {
        let dir = std::env::temp_dir().join("pwrel_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("a.f64");
        let data = vec![1.5f64, -2.25, 1e300];
        write_f64(&p, &data).unwrap();
        assert_eq!(read_f64(&p).unwrap(), data);
    }

    #[test]
    fn misaligned_file_rejected() {
        let dir = std::env::temp_dir().join("pwrel_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.f32");
        std::fs::write(&p, [0u8; 6]).unwrap();
        assert!(read_f32(&p).is_err());
    }

    #[test]
    fn identify_lz_wrapped_sz_stream() {
        // A highly compressible field makes SZ choose the LZ wrapper
        // (leading byte 1), which hides the magic until unwrapped.
        use pwrel_data::Dims;
        use pwrel_sz::SzCompressor;
        let data = vec![1.0f32; 65536];
        let stream = SzCompressor::default()
            .compress_abs(&data, Dims::d1(65536), 0.1)
            .unwrap();
        assert_eq!(stream[0], 1, "expected the LZ wrapper on constant data");
        assert_eq!(identify(&stream), Some(StreamKind::Sz));
    }

    #[test]
    fn identify_kinds() {
        assert_eq!(identify(b"PWT1rest"), Some(StreamKind::PwRel));
        assert_eq!(identify(b"ZFR1rest"), Some(StreamKind::Zfp));
        assert_eq!(identify(b"FPZ1rest"), Some(StreamKind::Fpzip));
        assert_eq!(identify(b"ISB1rest"), Some(StreamKind::Isabela));
        assert_eq!(identify(b"\x00SZR1rest"), Some(StreamKind::Sz));
        assert_eq!(identify(b"garbage!"), None);
        assert_eq!(identify(b""), None);
    }
}
