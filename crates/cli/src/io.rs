//! Raw little-endian float file I/O.
//!
//! Stream identification lives in `pwrel_pipeline::legacy` now — the
//! registry owns both the unified container and the legacy magic sniff.

use crate::CliError;
use std::fs;
use std::path::Path;

/// Reads a raw little-endian `f32` file.
pub fn read_f32(path: impl AsRef<Path>) -> Result<Vec<f32>, CliError> {
    let bytes = fs::read(path)?;
    if bytes.len() % 4 != 0 {
        return Err(CliError::Usage(
            "f32 file length is not a multiple of 4".into(),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Reads a raw little-endian `f64` file.
pub fn read_f64(path: impl AsRef<Path>) -> Result<Vec<f64>, CliError> {
    let bytes = fs::read(path)?;
    if bytes.len() % 8 != 0 {
        return Err(CliError::Usage(
            "f64 file length is not a multiple of 8".into(),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Writes a raw little-endian `f32` file.
pub fn write_f32(path: impl AsRef<Path>, data: &[f32]) -> Result<(), CliError> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    fs::write(path, out)?;
    Ok(())
}

/// Writes a raw little-endian `f64` file.
pub fn write_f64(path: impl AsRef<Path>, data: &[f64]) -> Result<(), CliError> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    fs::write(path, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_file_round_trip() {
        let dir = std::env::temp_dir().join("pwrel_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("a.f32");
        let data = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE];
        write_f32(&p, &data).unwrap();
        assert_eq!(read_f32(&p).unwrap(), data);
    }

    #[test]
    fn f64_file_round_trip() {
        let dir = std::env::temp_dir().join("pwrel_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("a.f64");
        let data = vec![1.5f64, -2.25, 1e300];
        write_f64(&p, &data).unwrap();
        assert_eq!(read_f64(&p).unwrap(), data);
    }

    #[test]
    fn misaligned_file_rejected() {
        let dir = std::env::temp_dir().join("pwrel_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.f32");
        std::fs::write(&p, [0u8; 6]).unwrap();
        assert!(read_f32(&p).is_err());
    }
}
