#![forbid(unsafe_code)]
//! `pwrel` command-line entry point. All logic lives in the library so it
//! can be unit-tested; this file only adapts process arguments and exit
//! codes.

use pwrel_cli::{run, Cli, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = run(cli, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
