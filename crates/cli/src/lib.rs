#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Library backing the `pwrel` command-line tool.
//!
//! Mirrors the ergonomics of the `sz`/`zfp` CLIs the paper's users drive:
//! compress a raw binary float file under a chosen mode and bound,
//! decompress it back, inspect a stream, or verify error statistics
//! against the original. All logic lives here (unit-testable); `main.rs`
//! only forwards `std::env::args`.

pub mod archive;
pub mod args;
pub mod io;
pub mod run;

pub use args::{Cli, Command};
pub use run::run;

/// CLI-level errors (argument, I/O, codec).
#[derive(Debug)]
pub enum CliError {
    /// Bad or missing command-line arguments; includes usage help.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Compression/decompression failure.
    Codec(pwrel_data::CodecError),
    /// PWRP/1 service failure (`pwrel serve` / `pwrel remote`).
    Serve(pwrel_serve::ServeError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Codec(e) => write!(f, "codec error: {e}"),
            CliError::Serve(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<pwrel_data::CodecError> for CliError {
    fn from(e: pwrel_data::CodecError) -> Self {
        CliError::Codec(e)
    }
}

impl From<pwrel_serve::ServeError> for CliError {
    fn from(e: pwrel_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}
