//! Multi-field snapshot archives.
//!
//! The paper's workload is a simulation *snapshot*: many named fields
//! dumped together (NYX has 6, CESM-ATM 79). An archive packs each field's
//! compressed stream with its name and shape into one self-describing
//! file:
//!
//! ```text
//! magic "PWA1" | n_entries uvarint
//! per entry: name (uvarint len + UTF-8) | dims header | elem u8
//!          | stream uvarint len + bytes
//! ```
//!
//! Entries are independently compressed, so fields can be extracted
//! without touching the rest.

use crate::CliError;
use pwrel_bitstream::{bytesio, varint};
use pwrel_data::Dims;

const MAGIC: &[u8; 4] = b"PWA1";
/// Sanity cap on field names.
const MAX_NAME: usize = 4096;

/// One archived field.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Field name (e.g. `dark_matter_density`).
    pub name: String,
    /// Grid shape of the original data.
    pub dims: Dims,
    /// Element width in bits (32 or 64).
    pub elem_bits: u8,
    /// The compressed stream (any codec; self-identifying).
    pub stream: Vec<u8>,
}

/// Serializes entries into an archive.
///
/// Rejects field names longer than the cap `unpack` enforces — an
/// over-long name would produce an archive this tool itself refuses to
/// read.
pub fn pack(entries: &[Entry]) -> Result<Vec<u8>, CliError> {
    if let Some(e) = entries.iter().find(|e| e.name.len() > MAX_NAME) {
        return Err(CliError::Usage(format!(
            "field name of {} bytes exceeds the {MAX_NAME}-byte cap",
            e.name.len()
        )));
    }
    let total: usize = entries
        .iter()
        .map(|e| e.stream.len() + e.name.len() + 32)
        .sum();
    let mut out = Vec::with_capacity(total + 16);
    out.extend_from_slice(MAGIC);
    varint::write_uvarint(&mut out, entries.len() as u64);
    for e in entries {
        varint::write_uvarint(&mut out, e.name.len() as u64);
        out.extend_from_slice(e.name.as_bytes());
        let (rank, nx, ny, nz) = e.dims.to_header();
        out.push(rank);
        varint::write_uvarint(&mut out, nx);
        varint::write_uvarint(&mut out, ny);
        varint::write_uvarint(&mut out, nz);
        out.push(e.elem_bits);
        varint::write_uvarint(&mut out, e.stream.len() as u64);
        out.extend_from_slice(&e.stream);
    }
    Ok(out)
}

/// Parses an archive back into entries.
pub fn unpack(bytes: &[u8]) -> Result<Vec<Entry>, CliError> {
    let corrupt = |w: &'static str| CliError::Codec(pwrel_data::CodecError::Corrupt(w));
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(CliError::Codec(pwrel_data::CodecError::Mismatch(
            "bad archive magic",
        )));
    }
    let mut pos = 4usize;
    let n = varint::read_uvarint(bytes, &mut pos).map_err(|_| corrupt("entry count"))? as usize;
    if n > bytes.len() {
        return Err(corrupt("entry count exceeds archive"));
    }
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name_len =
            varint::read_uvarint(bytes, &mut pos).map_err(|_| corrupt("name length"))? as usize;
        if name_len > MAX_NAME {
            return Err(corrupt("field name too long"));
        }
        let name_bytes =
            bytesio::get_bytes(bytes, &mut pos, name_len).map_err(|_| corrupt("name"))?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| corrupt("field name not UTF-8"))?
            .to_string();
        let rank = *bytes.get(pos).ok_or_else(|| corrupt("rank"))?;
        pos += 1;
        let nx = varint::read_uvarint(bytes, &mut pos).map_err(|_| corrupt("nx"))?;
        let ny = varint::read_uvarint(bytes, &mut pos).map_err(|_| corrupt("ny"))?;
        let nz = varint::read_uvarint(bytes, &mut pos).map_err(|_| corrupt("nz"))?;
        let dims = Dims::from_header(rank, nx, ny, nz).ok_or_else(|| corrupt("dims"))?;
        let elem_bits = *bytes.get(pos).ok_or_else(|| corrupt("elem"))?;
        pos += 1;
        if elem_bits != 32 && elem_bits != 64 {
            return Err(corrupt("element width"));
        }
        let stream_len =
            varint::read_uvarint(bytes, &mut pos).map_err(|_| corrupt("stream length"))? as usize;
        let stream =
            bytesio::get_bytes(bytes, &mut pos, stream_len).map_err(|_| corrupt("stream"))?;
        out.push(Entry {
            name,
            dims,
            elem_bits,
            stream: stream.to_vec(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_core::{LogBase, PwRelCompressor};
    use pwrel_sz::SzCompressor;

    fn sample_entries() -> Vec<Entry> {
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let mut entries = Vec::new();
        for (name, n) in [("density", 300usize), ("velocity_x", 200)] {
            let dims = Dims::d1(n);
            let data: Vec<f32> = (0..n).map(|i| (i as f32 + 1.0) * 0.5).collect();
            entries.push(Entry {
                name: name.into(),
                dims,
                elem_bits: 32,
                stream: codec.compress(&data, dims, 1e-2).unwrap(),
            });
        }
        entries
    }

    #[test]
    fn pack_unpack_round_trip() {
        let entries = sample_entries();
        let archive = pack(&entries).unwrap();
        let back = unpack(&archive).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn overlong_name_rejected_at_pack_time() {
        let mut entries = sample_entries();
        entries[0].name = "x".repeat(4097);
        assert!(matches!(pack(&entries), Err(CliError::Usage(_))));
    }

    #[test]
    fn streams_decode_after_round_trip() {
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let archive = pack(&sample_entries()).unwrap();
        let back = unpack(&archive).unwrap();
        for e in &back {
            let dec: Vec<f32> = codec.decompress(&e.stream).unwrap();
            assert_eq!(dec.len(), e.dims.len(), "{}", e.name);
        }
    }

    #[test]
    fn empty_archive() {
        let archive = pack(&[]).unwrap();
        assert!(unpack(&archive).unwrap().is_empty());
    }

    #[test]
    fn corrupt_archives_error_not_panic() {
        let archive = pack(&sample_entries()).unwrap();
        assert!(unpack(&archive[..3]).is_err());
        assert!(unpack(b"XXXX").is_err());
        for cut in [5usize, 10, 20, archive.len() - 3] {
            let _ = unpack(&archive[..cut]); // must not panic
        }
        let mut bad = archive.clone();
        bad[5] = 0xFF; // mangle the first name length varint
        let _ = unpack(&bad);
    }

    #[test]
    fn proptest_arbitrary_entries_round_trip() {
        use proptest::prelude::*;
        let entry = (
            "[a-z_]{0,24}",
            1usize..64,
            prop_oneof![Just(32u8), Just(64u8)],
            prop::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(name, n, elem_bits, stream)| Entry {
                name,
                dims: Dims::d1(n),
                elem_bits,
                stream,
            });
        proptest!(ProptestConfig::with_cases(64), |(entries in prop::collection::vec(entry, 0..12))| {
            let back = unpack(&pack(&entries).unwrap()).unwrap();
            prop_assert_eq!(back, entries);
        });
    }

    #[test]
    fn unicode_names_survive() {
        let mut entries = sample_entries();
        entries[0].name = "密度_ρ".into();
        let back = unpack(&pack(&entries).unwrap()).unwrap();
        assert_eq!(back[0].name, "密度_ρ");
    }
}
