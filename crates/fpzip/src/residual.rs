//! Residual coding: bit-length classes + raw remainder bits.
//!
//! A residual `r` is zigzag-mapped to `u`, whose *bit length* (0..=64)
//! becomes a Huffman symbol while the bits below the (implicit) leading one
//! are emitted raw. Small residuals — the common case after Lorenzo
//! prediction — therefore cost a few Huffman bits, while the scheme
//! degrades gracefully to ~65 bits for incompressible values.

use pwrel_bitstream::{varint, BitReader, Result};

/// Class reserved for raw-escape values (full-width verbatim bits follow
/// in the payload stream instead of residual bits).
pub const RAW_CLASS: u32 = 65;

/// Number of classes (bit lengths 0..=64, plus the raw escape).
pub const N_CLASSES: usize = 66;

/// Encodes a residual as `(class, payload_bits, n_payload_bits)`.
#[inline]
pub fn encode(r: i64) -> (u32, u64, u32) {
    let u = varint::zigzag_encode(r);
    if u == 0 {
        return (0, 0, 0);
    }
    let class = 64 - u.leading_zeros();
    let nbits = class - 1;
    let payload = if nbits == 0 {
        0
    } else {
        u & ((1u64 << nbits) - 1)
    };
    (class, payload, nbits)
}

/// Decodes a residual from its class and the raw bit stream.
#[inline]
pub fn decode(class: u32, r: &mut BitReader) -> Result<i64> {
    if class == 0 {
        return Ok(0);
    }
    debug_assert!(class <= 64);
    let nbits = class - 1;
    let low = if nbits == 0 { 0 } else { r.read_bits(nbits)? };
    let u = if class == 64 {
        (1u64 << 63) | low
    } else {
        (1u64 << nbits) | low
    };
    Ok(varint::zigzag_decode(u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_bitstream::BitWriter;

    #[test]
    fn round_trip_extremes() {
        for r in [
            0i64,
            1,
            -1,
            2,
            -2,
            1023,
            -1024,
            i64::MAX,
            i64::MIN,
            i64::MAX / 3,
            -(1 << 40),
        ] {
            let (class, payload, nbits) = encode(r);
            assert!(class < N_CLASSES as u32);
            let mut w = BitWriter::new();
            w.write_bits(payload, nbits);
            let bytes = w.into_bytes();
            let mut reader = BitReader::new(&bytes);
            assert_eq!(decode(class, &mut reader).unwrap(), r, "r = {r}");
        }
    }

    #[test]
    fn zero_residual_costs_no_payload_bits() {
        let (class, _, nbits) = encode(0);
        assert_eq!(class, 0);
        assert_eq!(nbits, 0);
    }

    #[test]
    fn small_residuals_have_small_classes() {
        assert_eq!(encode(1).0, 2); // zigzag(1) = 2 -> 2 bits
        assert_eq!(encode(-1).0, 1); // zigzag(-1) = 1 -> 1 bit
        assert!(encode(100).0 <= 8);
    }

    #[test]
    fn payload_bits_equal_class_minus_one() {
        for r in [5i64, -17, 123456, -987654321] {
            let (class, _, nbits) = encode(r);
            assert_eq!(nbits, class - 1);
        }
    }

    #[test]
    fn stream_of_mixed_residuals() {
        let rs: Vec<i64> = (0..1000)
            .map(|i| (i * i) as i64 * if i % 2 == 0 { 1 } else { -1 })
            .collect();
        let mut w = BitWriter::new();
        let mut classes = Vec::new();
        for &r in &rs {
            let (c, p, n) = encode(r);
            classes.push(c);
            w.write_bits(p, n);
        }
        let bytes = w.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for (&c, &expect) in classes.iter().zip(&rs) {
            assert_eq!(decode(c, &mut reader).unwrap(), expect);
        }
    }
}
