#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! FPZIP-like predictive floating-point compressor.
//!
//! Reproduces the design and, crucially, the *parameterization* of FPZIP as
//! used in the paper's evaluation: the codec accepts only a **precision**
//! `p` (bits of each float retained), not an error bound. Compression is
//! lossless with respect to the precision-truncated values, so the
//! point-wise relative error is exactly the mantissa truncation error:
//!
//! * f32: `max rel err = 2^-(p-9)`  (1 sign + 8 exponent bits overhead)
//! * f64: `max rel err = 2^-(p-12)` (1 sign + 11 exponent bits overhead)
//!
//! which matches Table IV (`-p 19 → 9.8e-4`, `-p 16 → 7.8e-3`). Because `p`
//! is integral, the compression ratio is a *step function* of the error
//! bound — the "piecewise" behaviour the paper criticizes.
//!
//! Pipeline: truncate mantissas to `p` → map to order-preserving unsigned
//! integers → Lorenzo-predict in the integer domain from already-coded
//! neighbours → entropy-code residuals (Huffman over bit-length classes +
//! raw remainder bits), losslessly.

mod residual;

use pwrel_bitstream::{varint, BitReader, BitWriter};
use pwrel_data::{CodecError, Dims, Float};
use pwrel_lossless::huffman;

const MAGIC: &[u8; 4] = b"FPZ1";

/// Sign + exponent bit overhead included in the precision parameter.
fn precision_offset<F: Float>() -> u32 {
    1 + F::EXP_BITS
}

/// Smallest precision that respects a point-wise relative bound.
pub fn precision_for_rel_bound<F: Float>(rel_bound: f64) -> u32 {
    assert!(rel_bound > 0.0 && rel_bound.is_finite());
    let m = (-rel_bound.log2()).ceil().max(1.0) as u32;
    (precision_offset::<F>() + m).min(F::BITS)
}

/// The guaranteed point-wise relative bound of a given precision.
pub fn rel_bound_for_precision<F: Float>(p: u32) -> f64 {
    let m = p.saturating_sub(precision_offset::<F>()).min(F::MANT_BITS);
    if m >= F::MANT_BITS {
        // Full mantissa kept: lossless.
        0.0
    } else {
        (-(m as f64)).exp2()
    }
}

/// FPZIP-like codec configured by a precision parameter.
///
/// ```
/// use pwrel_fpzip::{FpzipCompressor, rel_bound_for_precision};
/// use pwrel_data::Dims;
///
/// let data: Vec<f32> = (1..=512).map(|i| i as f32 * 1.5).collect();
/// let codec = FpzipCompressor::for_rel_bound::<f32>(1e-2);
/// let stream = codec.compress(&data, Dims::d1(512)).unwrap();
/// let (back, _) = pwrel_fpzip::decompress::<f32>(&stream).unwrap();
/// let bound = rel_bound_for_precision::<f32>(codec.precision);
/// for (a, b) in data.iter().zip(&back) {
///     assert!(((a - b) / a).abs() as f64 <= bound);
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FpzipCompressor {
    /// Bits of precision retained per value (`-p` in fpzip).
    pub precision: u32,
}

impl FpzipCompressor {
    /// Creates a codec with an explicit precision.
    pub fn new(precision: u32) -> Self {
        Self { precision }
    }

    /// Creates a codec whose precision is the loosest one still respecting
    /// `rel_bound` — how the paper's evaluation drives FPZIP.
    pub fn for_rel_bound<F: Float>(rel_bound: f64) -> Self {
        Self::new(precision_for_rel_bound::<F>(rel_bound))
    }

    /// Mantissa bits discarded at the configured precision.
    fn drop_bits<F: Float>(&self) -> u32 {
        let m = self
            .precision
            .saturating_sub(precision_offset::<F>())
            .min(F::MANT_BITS);
        F::MANT_BITS - m
    }

    /// Truncates `x` to the configured precision (the only lossy step).
    ///
    /// Denormal and non-finite values are kept exact: truncating a denormal
    /// mantissa could produce unbounded relative error.
    fn truncate<F: Float>(&self, x: F) -> F {
        let drop = self.drop_bits::<F>();
        if drop == 0 {
            return x;
        }
        let bits = x.to_bits_u64();
        let exp_mask = ((1u64 << F::EXP_BITS) - 1) << F::MANT_BITS;
        let exp = bits & exp_mask;
        if exp == 0 || exp == exp_mask {
            return x; // denormal / zero / inf / NaN: exact
        }
        F::from_bits_u64(bits & !((1u64 << drop) - 1))
    }

    /// Compresses `data`. Every decompressed value satisfies
    /// `|x - x'| <= rel_bound_for_precision(p) * |x|`.
    pub fn compress<F: Float>(&self, data: &[F], dims: Dims) -> Result<Vec<u8>, CodecError> {
        if self.precision <= precision_offset::<F>() || self.precision > F::BITS {
            return Err(CodecError::InvalidArgument("precision out of range"));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        let drop = self.drop_bits::<F>();

        // Stage 1+2: truncate and map to order-preserving integers. The
        // truncated bits are constant per sign (0s for positives, 1s for
        // negatives in the ordered domain), so prediction and coding run in
        // the `drop`-shifted *compact* domain; values whose low bits do not
        // match the canonical fill (denormals, NaNs kept exact) go through
        // the raw-escape class.
        let ordered: Vec<u64> = data
            .iter()
            .map(|&x| ordered_from_bits::<F>(self.truncate(x).to_bits_u64()))
            .collect();
        let compact: Vec<u64> = ordered.iter().map(|&o| o >> drop).collect();

        // Stage 3: integer Lorenzo prediction, residuals to length classes.
        let mut classes: Vec<u32> = Vec::with_capacity(compact.len());
        let mut raw = BitWriter::with_capacity(compact.len());
        for k in 0..dims.nz {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    let idx = dims.index(i, j, k);
                    if ordered[idx] != canonical_ordered::<F>(compact[idx], drop) {
                        classes.push(residual::RAW_CLASS);
                        raw.write_bits(ordered[idx], F::BITS);
                        continue;
                    }
                    let pred = predict_int(&compact, dims, i, j, k);
                    let r = compact[idx] as i64 as i128 - pred as i64 as i128;
                    let (class, payload, nbits) = residual::encode(r as i64);
                    classes.push(class);
                    raw.write_bits(payload, nbits);
                }
            }
        }

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(F::BITS as u8);
        out.push(self.precision as u8);
        let (rank, nx, ny, nz) = dims.to_header();
        out.push(rank);
        varint::write_uvarint(&mut out, nx);
        varint::write_uvarint(&mut out, ny);
        varint::write_uvarint(&mut out, nz);
        let classes_buf = huffman::encode_symbols(&classes, residual::N_CLASSES);
        varint::write_uvarint(&mut out, classes_buf.len() as u64);
        out.extend_from_slice(&classes_buf);
        let raw_bytes = raw.into_bytes();
        varint::write_uvarint(&mut out, raw_bytes.len() as u64);
        out.extend_from_slice(&raw_bytes);
        Ok(out)
    }

    /// Decompresses a stream produced by [`FpzipCompressor::compress`].
    pub fn decompress<F: Float>(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        decompress::<F>(bytes)
    }
}

/// Decompresses without needing the original configuration.
pub fn decompress<F: Float>(bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
    if bytes.len() < 7 || &bytes[..4] != MAGIC {
        return Err(CodecError::Mismatch("bad FPZIP magic"));
    }
    let mut pos = 4usize;
    let float_bits = bytes[pos];
    pos += 1;
    if float_bits as u32 != F::BITS {
        return Err(CodecError::Mismatch("element type differs from stream"));
    }
    let precision = bytes[pos] as u32;
    pos += 1;
    let rank = bytes[pos];
    pos += 1;
    let nx = varint::read_uvarint(bytes, &mut pos)?;
    let ny = varint::read_uvarint(bytes, &mut pos)?;
    let nz = varint::read_uvarint(bytes, &mut pos)?;
    let dims = Dims::from_header(rank, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims"))?;

    let classes_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let classes_end = pos
        .checked_add(classes_len)
        .ok_or(CodecError::Corrupt("eof"))?;
    if classes_end > bytes.len() {
        return Err(CodecError::Corrupt("truncated classes"));
    }
    let mut cpos = pos;
    let classes = huffman::decode_symbols(bytes, &mut cpos)?;
    pos = classes_end;
    if classes.len() != dims.len() {
        return Err(CodecError::Corrupt("class count != point count"));
    }
    let raw_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let raw_end = pos.checked_add(raw_len).ok_or(CodecError::Corrupt("eof"))?;
    if raw_end > bytes.len() {
        return Err(CodecError::Corrupt("truncated payload"));
    }
    let mut raw = BitReader::new(&bytes[pos..raw_end]);

    let drop = FpzipCompressor::new(precision).drop_bits::<F>();
    let mut compact = vec![0u64; dims.len()];
    let mut ordered = vec![0u64; dims.len()];
    for k in 0..dims.nz {
        for j in 0..dims.ny {
            for i in 0..dims.nx {
                let idx = dims.index(i, j, k);
                if classes[idx] == residual::RAW_CLASS {
                    let o = raw.read_bits(F::BITS)?;
                    ordered[idx] = o;
                    compact[idx] = o >> drop;
                    continue;
                }
                let pred = predict_int(&compact, dims, i, j, k);
                let r = residual::decode(classes[idx], &mut raw)?;
                let c = (pred as i64).wrapping_add(r) as u64 & (width_mask::<F>() >> drop);
                compact[idx] = c;
                ordered[idx] = canonical_ordered::<F>(c, drop);
            }
        }
    }
    let out: Vec<F> = ordered
        .into_iter()
        .map(|o| F::from_bits_u64(bits_from_ordered::<F>(o)))
        .collect();
    Ok((out, dims))
}

/// Expands a compact (shifted) ordered integer back to full width, filling
/// the dropped bits with the canonical per-sign pattern: zeros for
/// non-negative values (sign-indicator bit set), ones for negative ones.
#[inline]
fn canonical_ordered<F: Float>(compact: u64, drop: u32) -> u64 {
    let o = (compact << drop) & width_mask::<F>();
    if drop == 0 {
        return o;
    }
    let sign_bit = 1u64 << (F::BITS - 1);
    if o & sign_bit == 0 {
        // Negative value: truncation set the discarded mantissa bits,
        // which complement to ones in the ordered domain.
        o | ((1u64 << drop) - 1)
    } else {
        o
    }
}

#[inline]
fn width_mask<F: Float>() -> u64 {
    if F::BITS == 64 {
        u64::MAX
    } else {
        (1u64 << F::BITS) - 1
    }
}

/// IEEE bits → order-preserving unsigned integer (monotone in value).
#[inline]
fn ordered_from_bits<F: Float>(bits: u64) -> u64 {
    let sign_bit = 1u64 << (F::BITS - 1);
    if bits & sign_bit != 0 {
        (!bits) & width_mask::<F>()
    } else {
        bits | sign_bit
    }
}

/// Inverse of [`ordered_from_bits`].
#[inline]
fn bits_from_ordered<F: Float>(o: u64) -> u64 {
    let sign_bit = 1u64 << (F::BITS - 1);
    if o & sign_bit != 0 {
        o & !sign_bit
    } else {
        (!o) & width_mask::<F>()
    }
}

/// Integer-domain Lorenzo prediction over already-coded neighbours.
///
/// The ordered-integer map is a piecewise-linear embedding of the floats
/// (exponent + mantissa), so Lorenzo in this domain behaves like fpzip's
/// float-domain predictor while keeping the pipeline exactly invertible.
#[inline]
fn predict_int(ints: &[u64], dims: Dims, i: usize, j: usize, k: usize) -> u64 {
    let at = |ii: isize, jj: isize, kk: isize| -> i128 {
        if ii < 0 || jj < 0 || kk < 0 {
            return 0;
        }
        ints[dims.index(ii as usize, jj as usize, kk as usize)] as i128
    };
    let (i, j, k) = (i as isize, j as isize, k as isize);
    let p: i128 = match dims.rank() {
        1 => at(i - 1, 0, 0),
        2 => at(i - 1, j, 0) + at(i, j - 1, 0) - at(i - 1, j - 1, 0),
        _ => {
            at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
                - at(i - 1, j - 1, k)
                - at(i - 1, j, k - 1)
                - at(i, j - 1, k - 1)
                + at(i - 1, j - 1, k - 1)
        }
    };
    p.clamp(0, u64::MAX as i128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::grf;

    fn check_rel<F: Float>(data: &[F], dims: Dims, p: u32) -> Vec<u8> {
        let codec = FpzipCompressor::new(p);
        let bytes = codec.compress(data, dims).unwrap();
        let (dec, d2) = decompress::<F>(&bytes).unwrap();
        assert_eq!(d2, dims);
        let bound = rel_bound_for_precision::<F>(p);
        for (idx, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            let (a, b) = (a.to_f64(), b.to_f64());
            if a == 0.0 {
                assert_eq!(b, 0.0, "idx {idx}: zero must stay exact");
            } else {
                let rel = (a - b).abs() / a.abs();
                assert!(rel <= bound, "idx {idx}: rel {rel} > {bound} (p={p})");
            }
        }
        bytes
    }

    #[test]
    fn precision_mapping_matches_paper() {
        assert_eq!(precision_for_rel_bound::<f32>(1e-3), 19);
        assert_eq!(precision_for_rel_bound::<f32>(1e-2), 16);
        assert_eq!(precision_for_rel_bound::<f32>(1e-1), 13);
        assert!((rel_bound_for_precision::<f32>(19) - 2f64.powi(-10)).abs() < 1e-15);
        assert!((rel_bound_for_precision::<f32>(16) - 2f64.powi(-7)).abs() < 1e-15);
    }

    #[test]
    fn rel_bound_holds_1d_signed() {
        let dims = Dims::d1(5000);
        let data: Vec<f32> = (0..5000)
            .map(|i| (i as f32 * 0.37).sin() * 10f32.powi((i % 9) - 4))
            .collect();
        for p in [13u32, 16, 19, 26] {
            check_rel(&data, dims, p);
        }
    }

    #[test]
    fn rel_bound_holds_2d_3d() {
        let d2 = Dims::d2(48, 48);
        let f2 = grf::gaussian_field(d2, 31, 2, 2);
        check_rel(&f2, d2, 19);
        let d3 = Dims::d3(12, 12, 12);
        let f3 = grf::gaussian_field(d3, 32, 1, 2);
        check_rel(&f3, d3, 16);
    }

    #[test]
    fn f64_path() {
        let dims = Dims::d1(2000);
        let data: Vec<f64> = (0..2000)
            .map(|i| (i as f64 * 0.11).cos() * 1e8 + 1e5)
            .collect();
        for p in [22u32, 32, 44] {
            check_rel(&data, dims, p);
        }
    }

    #[test]
    fn zeros_and_nonfinite_exact() {
        let dims = Dims::d1(8);
        let data = vec![0.0f32, -0.0, 1.5, f32::NAN, f32::INFINITY, -2.5, 0.0, 1e-40];
        let codec = FpzipCompressor::new(16);
        let bytes = codec.compress(&data, dims).unwrap();
        let (dec, _) = decompress::<f32>(&bytes).unwrap();
        assert_eq!(dec[0].to_bits(), 0.0f32.to_bits());
        assert!(dec[3].is_nan());
        assert_eq!(dec[4], f32::INFINITY);
        // Denormals stored exactly.
        assert_eq!(dec[7], 1e-40);
    }

    #[test]
    fn full_precision_is_lossless() {
        let dims = Dims::d1(1000);
        let data = grf::white_noise(1000, 77);
        let codec = FpzipCompressor::new(32);
        let bytes = codec.compress(&data, dims).unwrap();
        let (dec, _) = decompress::<f32>(&bytes).unwrap();
        for (a, b) in data.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn cr_is_a_step_function_of_precision() {
        // Lower p -> smaller stream, strictly monotone over coarse steps.
        let dims = Dims::d2(64, 64);
        let data = grf::gaussian_field(dims, 41, 3, 3);
        let mut last = usize::MAX;
        for p in [28u32, 22, 16, 12] {
            let bytes = FpzipCompressor::new(p).compress(&data, dims).unwrap();
            assert!(bytes.len() < last, "p={p}");
            last = bytes.len();
        }
    }

    #[test]
    fn smooth_field_compresses_well() {
        let dims = Dims::d2(128, 128);
        let data: Vec<f32> = grf::gaussian_field(dims, 42, 4, 3)
            .into_iter()
            .map(|v| v + 10.0) // keep positive, large exponent runs
            .collect();
        let bytes = check_rel(&data, dims, 16);
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 3.0, "cr = {cr}");
    }

    #[test]
    fn invalid_args_rejected() {
        let data = [1.0f32; 4];
        assert!(FpzipCompressor::new(5)
            .compress(&data, Dims::d1(4))
            .is_err());
        assert!(FpzipCompressor::new(40)
            .compress(&data, Dims::d1(4))
            .is_err());
        assert!(FpzipCompressor::new(16)
            .compress(&data, Dims::d1(3))
            .is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let data = [1.0f32; 64];
        let bytes = FpzipCompressor::new(16)
            .compress(&data, Dims::d1(64))
            .unwrap();
        assert!(decompress::<f32>(&bytes[..bytes.len() / 2]).is_err());
        assert!(decompress::<f64>(&bytes).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decompress::<f32>(&bad).is_err());
    }

    #[test]
    fn ordered_map_is_monotone() {
        let vals = [-1e30f32, -2.5, -1e-10, -0.0, 0.0, 1e-10, 2.5, 1e30];
        let mapped: Vec<u64> = vals
            .iter()
            .map(|v| ordered_from_bits::<f32>(v.to_bits_u64()))
            .collect();
        for w in mapped.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for &v in &vals {
            let o = ordered_from_bits::<f32>(v.to_bits_u64());
            assert_eq!(bits_from_ordered::<f32>(o), v.to_bits_u64());
        }
    }
}
