//! Structural similarity (SSIM) for 2D slices — quantifies the visual
//! comparison Figure 4 makes between reconstructions at matched ratio.
//!
//! Standard single-scale SSIM with an 8×8 sliding window (stride 4),
//! constants `C1 = (0.01·L)²`, `C2 = (0.03·L)²` over the dynamic range `L`
//! of the original slice.

use pwrel_data::Float;

/// Mean SSIM between two row-major `height × width` images.
///
/// Returns 1.0 for identical inputs; panics on shape mismatch.
pub fn ssim_2d<F: Float>(original: &[F], decoded: &[F], width: usize, height: usize) -> f64 {
    assert_eq!(original.len(), width * height);
    assert_eq!(decoded.len(), width * height);
    const WIN: usize = 8;
    const STRIDE: usize = 4;

    // Dynamic range of the reference image.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in original {
        let v = v.to_f64();
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let l = (hi - lo).max(f64::MIN_POSITIVE);
    let c1 = (0.01 * l).powi(2);
    let c2 = (0.03 * l).powi(2);

    let mut sum = 0.0f64;
    let mut windows = 0usize;
    let mut y = 0;
    loop {
        let win_h = WIN.min(height.saturating_sub(y));
        if win_h == 0 {
            break;
        }
        let mut x = 0;
        loop {
            let win_w = WIN.min(width.saturating_sub(x));
            if win_w == 0 {
                break;
            }
            let n = (win_w * win_h) as f64;
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for dy in 0..win_h {
                for dx in 0..win_w {
                    let idx = (y + dy) * width + (x + dx);
                    ma += original[idx].to_f64();
                    mb += decoded[idx].to_f64();
                }
            }
            ma /= n;
            mb /= n;
            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for dy in 0..win_h {
                for dx in 0..win_w {
                    let idx = (y + dy) * width + (x + dx);
                    let da = original[idx].to_f64() - ma;
                    let db = decoded[idx].to_f64() - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= n;
            vb /= n;
            cov /= n;
            sum += ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                / ((ma * ma + mb * mb + c1) * (va + vb + c2));
            windows += 1;
            if x + WIN >= width {
                break;
            }
            x += STRIDE;
        }
        if y + WIN >= height {
            break;
        }
        y += STRIDE;
    }
    if windows == 0 {
        1.0
    } else {
        sum / windows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Vec<f32> {
        (0..w * h)
            .map(|i| (i % w) as f32 + (i / w) as f32 * 0.5)
            .collect()
    }

    #[test]
    fn identical_images_score_one() {
        let img = ramp(32, 32);
        let s = ssim_2d(&img, &img, 32, 32);
        assert!((s - 1.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn noise_lowers_ssim_monotonically() {
        let img = ramp(64, 64);
        let noisy = |amp: f32| -> Vec<f32> {
            img.iter()
                .enumerate()
                .map(|(i, &v)| {
                    let sign = if (i * 2654435761) & 8 == 0 { 1.0 } else { -1.0 };
                    v + sign * amp
                })
                .collect()
        };
        let s_small = ssim_2d(&img, &noisy(0.5), 64, 64);
        let s_big = ssim_2d(&img, &noisy(8.0), 64, 64);
        assert!(s_small > s_big, "{s_small} vs {s_big}");
        assert!(s_small > 0.95);
        assert!(s_big < 0.9);
    }

    #[test]
    fn constant_shift_is_penalized_less_than_structure_loss() {
        let img = ramp(64, 64);
        let shifted: Vec<f32> = img.iter().map(|v| v + 1.0).collect();
        let flat = vec![img.iter().sum::<f32>() / img.len() as f32; img.len()];
        let s_shift = ssim_2d(&img, &shifted, 64, 64);
        let s_flat = ssim_2d(&img, &flat, 64, 64);
        assert!(s_shift > s_flat, "{s_shift} vs {s_flat}");
    }

    #[test]
    fn small_images_do_not_panic() {
        let img = ramp(3, 3);
        let s = ssim_2d(&img, &img, 3, 3);
        assert!((s - 1.0).abs() < 1e-9);
        let empty: [f32; 0] = [];
        assert_eq!(ssim_2d(&empty, &empty, 0, 0), 1.0);
    }
}
