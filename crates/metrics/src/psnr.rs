//! Peak signal-to-noise ratio variants.

use pwrel_data::Float;

/// Standard PSNR in dB: `20 log10(range) - 10 log10(mse)`.
///
/// Returns `f64::INFINITY` for a perfect reconstruction.
pub fn psnr<F: Float>(original: &[F], decoded: &[F]) -> f64 {
    assert_eq!(original.len(), decoded.len());
    if original.is_empty() {
        return f64::INFINITY;
    }
    let mut vmin = f64::INFINITY;
    let mut vmax = f64::NEG_INFINITY;
    let mut sum_sq = 0f64;
    for (&a, &b) in original.iter().zip(decoded) {
        let a = a.to_f64();
        let b = b.to_f64();
        vmin = vmin.min(a);
        vmax = vmax.max(a);
        sum_sq += (a - b) * (a - b);
    }
    let mse = sum_sq / original.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (vmax - vmin).log10() - 10.0 * mse.log10()
}

/// Relative-error-based PSNR (Figure 1): PSNR of the *point-wise relative
/// errors* "with the value range being set to 1", i.e.
/// `-10 log10( mean( ((x - x') / x)^2 ) )` over non-zero originals.
pub fn rel_psnr<F: Float>(original: &[F], decoded: &[F]) -> f64 {
    assert_eq!(original.len(), decoded.len());
    let mut sum_sq = 0f64;
    let mut n = 0usize;
    for (&a, &b) in original.iter().zip(decoded) {
        let a = a.to_f64();
        let b = b.to_f64();
        if a == 0.0 {
            continue;
        }
        let e = (a - b) / a;
        sum_sq += e * e;
        n += 1;
    }
    if n == 0 || sum_sq == 0.0 {
        return f64::INFINITY;
    }
    -10.0 * (sum_sq / n as f64).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction_is_infinite() {
        let a = [1.0f32, 2.0, 3.0];
        assert!(psnr(&a, &a).is_infinite());
        assert!(rel_psnr(&a, &a).is_infinite());
    }

    #[test]
    fn known_value() {
        // range 1, uniform error 0.1 -> mse 0.01 -> psnr 20 dB.
        let a = [0.0f32, 1.0];
        let b = [0.1f32, 0.9];
        // f32 literals are not exactly 0.1/0.9, so allow float slack.
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-5);
    }

    #[test]
    fn rel_psnr_tracks_relative_error_scale() {
        let a: Vec<f32> = (1..=1000).map(|i| i as f32).collect();
        let b3: Vec<f32> = a.iter().map(|v| v * (1.0 + 1e-3)).collect();
        let b2: Vec<f32> = a.iter().map(|v| v * (1.0 + 1e-2)).collect();
        let p3 = rel_psnr(&a, &b3);
        let p2 = rel_psnr(&a, &b2);
        // 10x larger relative error => 20 dB lower.
        assert!((p3 - p2 - 20.0).abs() < 0.5, "p3={p3} p2={p2}");
    }

    #[test]
    fn psnr_improves_with_accuracy() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.1).sin()).collect();
        let coarse: Vec<f32> = a.iter().map(|v| v + 0.01).collect();
        let fine: Vec<f32> = a.iter().map(|v| v + 0.001).collect();
        assert!(psnr(&a, &fine) > psnr(&a, &coarse) + 10.0);
    }
}
