//! Error-distribution analysis (after Lindstrom, "Error Distributions of
//! Lossy Floating-Point Compressors", the paper's reference \[7\]).
//!
//! Different compressor families leave different error signatures:
//! prediction + linear-scaling quantization (SZ) produces errors close to
//! *uniform* on `[-eb, +eb]`; transform coders (ZFP) produce more
//! Gaussian-shaped errors. The statistics here — moments, histogram,
//! uniformity distance — let tests and analyses check those signatures.

use pwrel_data::Float;

/// Summary statistics of a (signed) error sample.
#[derive(Debug, Clone)]
pub struct ErrorDistribution {
    /// Sample count.
    pub n: usize,
    /// Mean error (bias; ~0 for unbiased compressors).
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Excess kurtosis (0 for Gaussian, −1.2 for uniform).
    pub excess_kurtosis: f64,
    /// Normalized histogram over `bins` equal cells spanning `[-range, range]`.
    pub histogram: Vec<f64>,
    /// Half-width of the histogram domain.
    pub range: f64,
}

impl ErrorDistribution {
    /// Computes the distribution of `decoded - original` over `bins` cells.
    ///
    /// `range` defaults to the maximum absolute error when `None`.
    pub fn compute<F: Float>(
        original: &[F],
        decoded: &[F],
        bins: usize,
        range: Option<f64>,
    ) -> Self {
        assert_eq!(original.len(), decoded.len());
        assert!(bins >= 2);
        let errors: Vec<f64> = original
            .iter()
            .zip(decoded)
            .map(|(&a, &b)| b.to_f64() - a.to_f64())
            .filter(|e| e.is_finite())
            .collect();
        let n = errors.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std: 0.0,
                excess_kurtosis: 0.0,
                histogram: vec![0.0; bins],
                range: 0.0,
            };
        }
        let nf = n as f64;
        let mean = errors.iter().sum::<f64>() / nf;
        let m2 = errors.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / nf;
        let m4 = errors.iter().map(|e| (e - mean).powi(4)).sum::<f64>() / nf;
        let std = m2.sqrt();
        let excess_kurtosis = if m2 > 0.0 { m4 / (m2 * m2) - 3.0 } else { 0.0 };

        let range = range
            .unwrap_or_else(|| errors.iter().fold(0.0f64, |m, e| m.max(e.abs())))
            .max(f64::MIN_POSITIVE);
        let mut histogram = vec![0.0f64; bins];
        for &e in &errors {
            let t = ((e + range) / (2.0 * range)).clamp(0.0, 1.0);
            let cell = ((t * bins as f64) as usize).min(bins - 1);
            histogram[cell] += 1.0;
        }
        for h in histogram.iter_mut() {
            *h /= nf;
        }
        Self {
            n,
            mean,
            std,
            excess_kurtosis,
            histogram,
            range,
        }
    }

    /// Total-variation distance from the uniform distribution over the
    /// histogram cells (0 = exactly uniform, →1 = concentrated).
    pub fn uniformity_distance(&self) -> f64 {
        let bins = self.histogram.len() as f64;
        0.5 * self
            .histogram
            .iter()
            .map(|&h| (h - 1.0 / bins).abs())
            .sum::<f64>()
    }

    /// Fraction of errors in the central half of the range — 0.5 for
    /// uniform errors, noticeably higher for peaked (Gaussian-ish) ones.
    pub fn central_mass(&self) -> f64 {
        let bins = self.histogram.len();
        let (lo, hi) = (bins / 4, bins - bins / 4);
        self.histogram[lo..hi].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(errors: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let orig = vec![0.0f64; errors.len()];
        let dec = errors.to_vec();
        (orig, dec)
    }

    fn lcg(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn uniform_errors_have_uniform_signature() {
        let u: Vec<f64> = lcg(100_000, 7).iter().map(|v| 2.0 * v - 1.0).collect();
        let (o, d) = synth(&u);
        let dist = ErrorDistribution::compute(&o, &d, 20, Some(1.0));
        assert!(dist.mean.abs() < 0.01);
        assert!(
            (dist.excess_kurtosis + 1.2).abs() < 0.1,
            "{}",
            dist.excess_kurtosis
        );
        assert!(dist.uniformity_distance() < 0.02);
        assert!((dist.central_mass() - 0.5).abs() < 0.02);
    }

    #[test]
    fn gaussian_errors_are_peaked() {
        // Box–Muller from the LCG.
        let u1 = lcg(50_000, 11);
        let u2 = lcg(50_000, 13);
        let g: Vec<f64> = u1
            .iter()
            .zip(&u2)
            .map(|(&a, &b)| {
                (-2.0 * a.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * b).cos() * 0.25
            })
            .collect();
        let (o, d) = synth(&g);
        let dist = ErrorDistribution::compute(&o, &d, 20, Some(1.0));
        assert!(dist.excess_kurtosis > -0.5, "{}", dist.excess_kurtosis);
        assert!(dist.uniformity_distance() > 0.2);
        assert!(dist.central_mass() > 0.8);
    }

    #[test]
    fn empty_and_constant_inputs() {
        let e: [f32; 0] = [];
        let dist = ErrorDistribution::compute(&e, &e, 8, None);
        assert_eq!(dist.n, 0);
        let a = [1.0f32; 10];
        let dist = ErrorDistribution::compute(&a, &a, 8, None);
        assert_eq!(dist.std, 0.0);
        assert_eq!(dist.excess_kurtosis, 0.0);
    }

    #[test]
    fn histogram_is_normalized() {
        let errs: Vec<f64> = (0..1000).map(|i| (i as f64 / 500.0) - 1.0).collect();
        let (o, d) = synth(&errs);
        let dist = ErrorDistribution::compute(&o, &d, 16, Some(1.0));
        let total: f64 = dist.histogram.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
