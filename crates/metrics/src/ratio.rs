//! Compression ratio and bit rate.

/// Compression ratio `original_bytes / compressed_bytes`.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    assert!(compressed_bytes > 0, "empty compressed stream");
    original_bytes as f64 / compressed_bytes as f64
}

/// Bit rate: compressed bits per data point.
pub fn bit_rate(compressed_bytes: usize, n_points: usize) -> f64 {
    assert!(n_points > 0, "no data points");
    compressed_bytes as f64 * 8.0 / n_points as f64
}

/// Throughput in MB/s given raw bytes processed and elapsed seconds.
pub fn throughput_mb_s(raw_bytes: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0);
    raw_bytes as f64 / 1.0e6 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bitrate_consistent() {
        // f32 data: CR 8 <=> 4 bits/point.
        let n = 1000usize;
        let raw = n * 4;
        let comp = raw / 8;
        assert_eq!(compression_ratio(raw, comp), 8.0);
        assert_eq!(bit_rate(comp, n), 4.0);
    }

    #[test]
    fn throughput() {
        assert_eq!(throughput_mb_s(10_000_000, 2.0), 5.0);
    }

    #[test]
    #[should_panic]
    fn zero_compressed_panics() {
        compression_ratio(10, 0);
    }
}
