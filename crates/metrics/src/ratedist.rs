//! Rate-distortion series containers (Figure 1).

/// One (bit-rate, PSNR) sample of a rate-distortion curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateDistortionPoint {
    /// Bits per data point.
    pub bit_rate: f64,
    /// PSNR in dB (variant chosen by the producer).
    pub psnr: f64,
}

/// A labelled rate-distortion curve.
#[derive(Debug, Clone)]
pub struct RateDistortionCurve {
    /// Series label (e.g. `base_2`).
    pub label: String,
    /// Samples sorted by bit rate.
    pub points: Vec<RateDistortionPoint>,
}

impl RateDistortionCurve {
    /// Creates an empty curve.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Adds a sample, keeping the series sorted by bit rate.
    pub fn push(&mut self, bit_rate: f64, psnr: f64) {
        self.points.push(RateDistortionPoint { bit_rate, psnr });
        self.points
            .sort_by(|a, b| a.bit_rate.partial_cmp(&b.bit_rate).unwrap());
    }

    /// Linear interpolation of PSNR at a given bit rate (`None` outside the
    /// sampled range). Used to compare curves at matched rates.
    pub fn psnr_at(&self, bit_rate: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() || bit_rate < pts[0].bit_rate || bit_rate > pts[pts.len() - 1].bit_rate {
            return None;
        }
        for w in pts.windows(2) {
            if bit_rate >= w[0].bit_rate && bit_rate <= w[1].bit_rate {
                let span = w[1].bit_rate - w[0].bit_rate;
                if span == 0.0 {
                    return Some(w[0].psnr);
                }
                let t = (bit_rate - w[0].bit_rate) / span;
                return Some(w[0].psnr + t * (w[1].psnr - w[0].psnr));
            }
        }
        Some(pts[pts.len() - 1].psnr)
    }

    /// Maximum |PSNR difference| against another curve over their common
    /// rate range, probed at `samples` points. `None` when ranges are
    /// disjoint. Used to verify "different bases give the same curve".
    pub fn max_gap(&self, other: &Self, samples: usize) -> Option<f64> {
        let lo = self
            .points
            .first()?
            .bit_rate
            .max(other.points.first()?.bit_rate);
        let hi = self
            .points
            .last()?
            .bit_rate
            .min(other.points.last()?.bit_rate);
        if hi < lo {
            return None;
        }
        let mut max = 0f64;
        for s in 0..samples.max(2) {
            let r = lo + (hi - lo) * s as f64 / (samples.max(2) - 1) as f64;
            if let (Some(a), Some(b)) = (self.psnr_at(r), other.psnr_at(r)) {
                max = max.max((a - b).abs());
            }
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_sorted() {
        let mut c = RateDistortionCurve::new("t");
        c.push(4.0, 60.0);
        c.push(2.0, 40.0);
        c.push(8.0, 80.0);
        let rates: Vec<f64> = c.points.iter().map(|p| p.bit_rate).collect();
        assert_eq!(rates, vec![2.0, 4.0, 8.0]);
    }

    #[test]
    fn interpolation() {
        let mut c = RateDistortionCurve::new("t");
        c.push(2.0, 40.0);
        c.push(4.0, 60.0);
        assert_eq!(c.psnr_at(3.0), Some(50.0));
        assert_eq!(c.psnr_at(2.0), Some(40.0));
        assert_eq!(c.psnr_at(1.0), None);
        assert_eq!(c.psnr_at(5.0), None);
    }

    #[test]
    fn max_gap_between_identical_curves_is_zero() {
        let mut a = RateDistortionCurve::new("a");
        let mut b = RateDistortionCurve::new("b");
        for (r, p) in [(1.0, 30.0), (2.0, 45.0), (3.0, 55.0)] {
            a.push(r, p);
            b.push(r, p);
        }
        assert!(a.max_gap(&b, 10).unwrap() < 1e-12);
    }

    #[test]
    fn max_gap_detects_offset() {
        let mut a = RateDistortionCurve::new("a");
        let mut b = RateDistortionCurve::new("b");
        for r in 1..=3 {
            a.push(r as f64, 30.0);
            b.push(r as f64, 33.0);
        }
        assert!((a.max_gap(&b, 5).unwrap() - 3.0).abs() < 1e-12);
    }
}
