//! Absolute and point-wise relative error statistics.

use pwrel_data::Float;

/// Absolute-error statistics between an original and a reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Maximum `|x - x'|`.
    pub max_abs: f64,
    /// Mean `|x - x'|`.
    pub avg_abs: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// `max(x) - min(x)` of the original data.
    pub value_range: f64,
}

impl ErrorStats {
    /// Computes absolute error statistics. Panics on length mismatch.
    pub fn compute<F: Float>(original: &[F], decoded: &[F]) -> Self {
        assert_eq!(original.len(), decoded.len());
        let mut max_abs = 0f64;
        let mut sum_abs = 0f64;
        let mut sum_sq = 0f64;
        let mut vmin = f64::INFINITY;
        let mut vmax = f64::NEG_INFINITY;
        for (&a, &b) in original.iter().zip(decoded) {
            let a = a.to_f64();
            let b = b.to_f64();
            let e = (a - b).abs();
            max_abs = max_abs.max(e);
            sum_abs += e;
            sum_sq += e * e;
            vmin = vmin.min(a);
            vmax = vmax.max(a);
        }
        let n = original.len().max(1) as f64;
        Self {
            max_abs,
            avg_abs: sum_abs / n,
            rmse: (sum_sq / n).sqrt(),
            value_range: if original.is_empty() {
                0.0
            } else {
                vmax - vmin
            },
        }
    }

    /// Fraction of points with `|x - x'| <= bound` (1.0 for empty input).
    pub fn bounded_fraction<F: Float>(original: &[F], decoded: &[F], bound: f64) -> f64 {
        assert_eq!(original.len(), decoded.len());
        if original.is_empty() {
            return 1.0;
        }
        let ok = original
            .iter()
            .zip(decoded)
            .filter(|(&a, &b)| (a.to_f64() - b.to_f64()).abs() <= bound)
            .count();
        ok as f64 / original.len() as f64
    }
}

/// Point-wise relative error statistics (Table IV's `Avg E` / `Max E`).
///
/// The relative error of point `i` is `|x_i - x'_i| / |x_i|`. Zero-valued
/// originals are handled the way the paper's strict-bound test does: a zero
/// that decodes to exact zero contributes error 0; a zero that decodes to
/// anything else counts as a violation (infinite relative error).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelErrorStats {
    /// Maximum point-wise relative error (may be `f64::INFINITY`).
    pub max_rel: f64,
    /// Mean point-wise relative error over non-zero originals.
    pub avg_rel: f64,
    /// Fraction of points within `bound` (the Table IV "bounded" column).
    pub bounded_fraction: f64,
    /// Number of zero originals that did not decode to exact zero.
    pub broken_zeros: usize,
}

impl RelErrorStats {
    /// Computes relative-error statistics against `bound`.
    pub fn compute<F: Float>(original: &[F], decoded: &[F], bound: f64) -> Self {
        assert_eq!(original.len(), decoded.len());
        let mut max_rel = 0f64;
        let mut sum_rel = 0f64;
        let mut n_nonzero = 0usize;
        let mut n_bounded = 0usize;
        let mut broken_zeros = 0usize;
        for (&a, &b) in original.iter().zip(decoded) {
            let a = a.to_f64();
            let b = b.to_f64();
            if a == 0.0 {
                if b == 0.0 {
                    n_bounded += 1;
                } else {
                    broken_zeros += 1;
                    max_rel = f64::INFINITY;
                }
                continue;
            }
            let e = (a - b).abs() / a.abs();
            max_rel = max_rel.max(e);
            sum_rel += e;
            n_nonzero += 1;
            if e <= bound {
                n_bounded += 1;
            }
        }
        let n = original.len().max(1) as f64;
        Self {
            max_rel,
            avg_rel: if n_nonzero == 0 {
                0.0
            } else {
                sum_rel / n_nonzero as f64
            },
            bounded_fraction: n_bounded as f64 / n,
            broken_zeros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_stats_basic() {
        let a = [0.0f32, 1.0, 2.0, 4.0];
        let b = [0.5f32, 1.0, 1.5, 4.0];
        let s = ErrorStats::compute(&a, &b);
        assert_eq!(s.max_abs, 0.5);
        assert!((s.avg_abs - 0.25).abs() < 1e-12);
        assert_eq!(s.value_range, 4.0);
        assert_eq!(ErrorStats::bounded_fraction(&a, &b, 0.5), 1.0);
        assert_eq!(ErrorStats::bounded_fraction(&a, &b, 0.4), 0.5);
    }

    #[test]
    fn rel_stats_respects_bound() {
        let a = [100.0f32, 1.0, 0.01];
        let b = [101.0f32, 1.001, 0.0100001];
        let s = RelErrorStats::compute(&a, &b, 1e-2);
        assert!(s.max_rel <= 1e-2 + 1e-9);
        assert_eq!(s.bounded_fraction, 1.0);
        assert_eq!(s.broken_zeros, 0);
    }

    #[test]
    fn zero_handling() {
        let a = [0.0f32, 0.0, 2.0];
        let good = [0.0f32, 0.0, 2.0];
        let bad = [0.0f32, 1e-9, 2.0];
        assert_eq!(RelErrorStats::compute(&a, &good, 0.1).broken_zeros, 0);
        let s = RelErrorStats::compute(&a, &bad, 0.1);
        assert_eq!(s.broken_zeros, 1);
        assert!(s.max_rel.is_infinite());
        assert!(s.bounded_fraction < 1.0);
    }

    #[test]
    fn empty_inputs() {
        let e: [f32; 0] = [];
        let s = ErrorStats::compute(&e, &e);
        assert_eq!(s.max_abs, 0.0);
        let r = RelErrorStats::compute(&e, &e, 0.1);
        assert_eq!(r.bounded_fraction, 0.0 / 1.0 + 0.0); // n.max(1) => 0/1
        assert_eq!(r.broken_zeros, 0);
    }

    #[test]
    fn f64_path() {
        let a = [1.0f64, -2.0];
        let b = [1.0f64, -2.0002];
        let s = RelErrorStats::compute(&a, &b, 1e-3);
        assert!((s.max_rel - 1e-4).abs() < 1e-9);
    }
}
