#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Compression-quality metrics used throughout the evaluation.
//!
//! Everything the paper's tables and figures report lives here:
//!
//! * [`error`] — absolute / point-wise relative error statistics and the
//!   "bounded %" check from Table IV,
//! * [`psnr`](crate::psnr()) (module `psnr`) — standard PSNR and the relative-error-based PSNR used for
//!   Figure 1's rate-distortion curves,
//! * [`ratio`] — compression ratio and bit rate,
//! * [`skew`] — 3D velocity angle skew (Figure 5),
//! * [`ratedist`] — (bit-rate, PSNR) series containers,
//! * [`distribution`] — error-distribution signatures (uniform vs peaked).

pub mod distribution;
pub mod error;
pub mod psnr;
pub mod ratedist;
pub mod ratio;
pub mod skew;
pub mod ssim;

pub use distribution::ErrorDistribution;
pub use error::{ErrorStats, RelErrorStats};
pub use psnr::{psnr, rel_psnr};
pub use ratedist::{RateDistortionCurve, RateDistortionPoint};
pub use ratio::{bit_rate, compression_ratio};
pub use skew::{angle_skew_deg, blockwise_skew};
pub use ssim::ssim_2d;
