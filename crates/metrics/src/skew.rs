//! Velocity angle skew (Figure 5).
//!
//! A particle's skewed angle is the angle between its original 3D velocity
//! and its reconstructed velocity:
//! `theta = arccos( v·v' / (|v| |v'|) )`, in degrees.

use pwrel_data::Float;

/// Angle in degrees between `(x, y, z)` and `(xd, yd, zd)`.
///
/// Returns 0 when either vector is (numerically) null — a null velocity has
/// no direction to skew.
pub fn angle_skew_deg(v: [f64; 3], vd: [f64; 3]) -> f64 {
    let dot = v[0] * vd[0] + v[1] * vd[1] + v[2] * vd[2];
    let n1 = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    let n2 = (vd[0] * vd[0] + vd[1] * vd[1] + vd[2] * vd[2]).sqrt();
    if n1 == 0.0 || n2 == 0.0 {
        return 0.0;
    }
    let c = (dot / (n1 * n2)).clamp(-1.0, 1.0);
    c.acos().to_degrees()
}

/// Per-particle skew angles for three velocity components.
pub fn per_particle_skew<F: Float>(
    vx: &[F],
    vy: &[F],
    vz: &[F],
    dx: &[F],
    dy: &[F],
    dz: &[F],
) -> Vec<f64> {
    let n = vx.len();
    assert!(
        [vy.len(), vz.len(), dx.len(), dy.len(), dz.len()]
            .iter()
            .all(|&l| l == n),
        "component length mismatch"
    );
    (0..n)
        .map(|i| {
            angle_skew_deg(
                [vx[i].to_f64(), vy[i].to_f64(), vz[i].to_f64()],
                [dx[i].to_f64(), dy[i].to_f64(), dz[i].to_f64()],
            )
        })
        .collect()
}

/// Average skew per block of `block` consecutive particles (the paper bins
/// scattered particles into 200^3 spatial blocks; for storage-ordered
/// synthetic data, consecutive runs play the same role).
pub fn blockwise_skew(skews: &[f64], block: usize) -> Vec<f64> {
    assert!(block > 0);
    skews
        .chunks(block)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_skew() {
        assert_eq!(angle_skew_deg([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]), 0.0);
        // Scaling does not change direction.
        assert!(angle_skew_deg([1.0, 2.0, 3.0], [2.0, 4.0, 6.0]) < 1e-6);
    }

    #[test]
    fn orthogonal_is_90_opposite_is_180() {
        assert!((angle_skew_deg([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]) - 90.0).abs() < 1e-9);
        assert!((angle_skew_deg([1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn null_vector_is_zero_skew() {
        assert_eq!(angle_skew_deg([0.0, 0.0, 0.0], [1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn small_relative_error_means_small_skew() {
        let v = [1000.0, -2000.0, 500.0];
        let vd = [1001.0, -2001.0, 500.4];
        assert!(angle_skew_deg(v, vd) < 0.1);
    }

    #[test]
    fn per_particle_and_blocks() {
        let vx = [1.0f32, 0.0];
        let vy = [0.0f32, 1.0];
        let vz = [0.0f32, 0.0];
        let dx = [0.0f32, 0.0];
        let dy = [1.0f32, 1.0];
        let dz = [0.0f32, 0.0];
        let s = per_particle_skew(&vx, &vy, &vz, &dx, &dy, &dz);
        assert!((s[0] - 90.0).abs() < 1e-9);
        assert!(s[1].abs() < 1e-9);
        let b = blockwise_skew(&s, 2);
        assert_eq!(b.len(), 1);
        assert!((b[0] - 45.0).abs() < 1e-9);
    }
}
