#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # pwrel — point-wise relative-error-bounded lossy compression
//!
//! Umbrella crate re-exporting the workspace: a full reproduction of
//! *"An Efficient Transformation Scheme for Lossy Data Compression with
//! Point-wise Relative Error Bound"* (Liang et al., IEEE CLUSTER 2018).
//!
//! The headline idea: a logarithmic data transform turns any
//! absolute-error-bounded compressor into a point-wise
//! relative-error-bounded one. See [`core::PwRelCompressor`].
//!
//! ## Quick start
//!
//! ```
//! use pwrel::core::{PwRelCompressor, LogBase};
//! use pwrel::sz::SzCompressor;
//! use pwrel::data::Dims;
//!
//! let data: Vec<f32> = (1..=4096).map(|i| (i as f32).sin().abs() + 0.5).collect();
//! let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
//! let compressed = codec.compress(&data, Dims::d1(data.len()), 1e-3).unwrap();
//! let restored = codec.decompress(&compressed).unwrap();
//! for (a, b) in data.iter().zip(&restored) {
//!     assert!(((a - b) / a).abs() <= 1e-3);
//! }
//! ```

pub use pwrel_bitstream as bitstream;
pub use pwrel_core as core;
pub use pwrel_data as data;
pub use pwrel_fpzip as fpzip;
pub use pwrel_isabela as isabela;
pub use pwrel_lossless as lossless;
pub use pwrel_metrics as metrics;
pub use pwrel_parallel as parallel;
pub use pwrel_pipeline as pipeline;
pub use pwrel_serve as serve;
pub use pwrel_sz as sz;
pub use pwrel_zfp as zfp;
