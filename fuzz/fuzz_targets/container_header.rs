#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    pwrel_fuzz::fuzz_container_header(data);
});
