//! Black-box integration tests for `pwrel-serve`: every test talks to a
//! real server over a real TCP socket.
//!
//! Three guarantees under test (PROTOCOL.md / DESIGN.md §17):
//!
//! 1. **Transport adds nothing.** A stream compressed through the
//!    server is byte-identical to `CodecRegistry::compress_stream` run
//!    locally with the same codec, bound, dims and chunking — for every
//!    registered codec at both precisions — and concurrent clients all
//!    get those same bytes.
//! 2. **Hostile input maps to a status, never a panic.** Each protocol
//!    error code is reachable from the wire (bad magic, version 0,
//!    unknown request type, unknown codec, corrupt body, quota, element
//!    cap, stalled header, busy), the response carries the right code,
//!    and the server keeps serving afterwards.
//! 3. **Overload degrades predictably.** Connection-cap and in-flight
//!    cap rejections are `busy`, delivered as connection-level or
//!    request-level errors respectively.

use pwrel::data::Float;
use pwrel::pipeline::{global, CompressOpts, SliceSource};
use pwrel_serve::proto;
use pwrel_serve::{Client, CompressHeader, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;

fn spawn(cfg: ServeConfig) -> ServerHandle {
    Server::bind(cfg).expect("bind").spawn().expect("spawn")
}

fn spawn_default() -> ServerHandle {
    spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..Default::default()
    })
}

/// Values spanning several decades with exact zeros sprinkled in — the
/// shape the transform codecs are built for.
fn sample<F: pwrel::data::Float>(n: usize) -> Vec<F> {
    (0..n)
        .map(|i| {
            if i % 97 == 0 {
                F::from_f64(0.0)
            } else {
                F::from_f64(((i as f64) * 0.013).sin() * 10f64.powi((i % 7) as i32 - 3))
            }
        })
        .collect()
}

/// The local reference stream: `compress_stream` with the same
/// parameters the server resolves for the request.
fn local_stream<F: pwrel::pipeline::PipelineElem>(
    codec: &str,
    data: &[F],
    dims: pwrel::data::Dims,
    bound: f64,
    chunk_elems: usize,
) -> Vec<u8> {
    let mut src = SliceSource::new(data);
    let mut out = Vec::new();
    global()
        .compress_stream::<F>(
            codec,
            &mut src,
            &mut out,
            dims,
            &CompressOpts::rel(bound),
            chunk_elems,
        )
        .unwrap();
    out
}

/// Compresses `data` through the server with an explicit chunk size.
fn server_stream<F: pwrel::data::Float>(
    client: &mut Client,
    codec_id: u8,
    data: &[F],
    dims: pwrel::data::Dims,
    bound: f64,
    chunk_elems: usize,
) -> Vec<u8> {
    let mut body = Vec::with_capacity(data.len() * F::NBYTES);
    for v in data {
        v.write_le(&mut body);
    }
    let header = CompressHeader {
        codec_id,
        elem_bits: F::BITS as u8,
        base: pwrel::core::LogBase::Two,
        bound,
        dims,
        chunk_elems: chunk_elems as u64,
    };
    let mut out = Vec::new();
    let mut src: &[u8] = &body;
    client
        .compress_stream(&header, &mut src, &mut out)
        .expect("server compress");
    out
}

// ---------------------------------------------------------------------
// 1. Transport adds nothing.
// ---------------------------------------------------------------------

#[test]
fn every_codec_matches_local_compress_and_round_trips_f32() {
    let handle = spawn_default();
    let dims = pwrel::data::Dims::d2(32, 64);
    let data: Vec<f32> = sample(dims.len());
    let bound = 1e-3;
    for codec in global().iter() {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let via_server = server_stream(&mut client, codec.id(), &data, dims, bound, 512);
        let local = local_stream(codec.name(), &data, dims, bound, 512);
        assert_eq!(via_server, local, "{}: server stream differs", codec.name());

        // Round trip back through the server; must equal the local
        // decode bit for bit.
        let back: Vec<f32> = client.decompress_elems(&via_server).expect("decompress");
        let mut sink = pwrel::pipeline::VecSink::new();
        global()
            .decompress_stream::<f32>(&mut &local[..], &mut sink)
            .unwrap();
        let local_back = sink.into_inner();
        assert_eq!(back.len(), data.len(), "{}", codec.name());
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&local_back), "{}", codec.name());
    }
}

#[test]
fn every_codec_matches_local_compress_f64() {
    let handle = spawn_default();
    let dims = pwrel::data::Dims::d1(1500);
    let data: Vec<f64> = sample(dims.len());
    let bound = 1e-4;
    for codec in global().iter() {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let via_server = server_stream(&mut client, codec.id(), &data, dims, bound, 400);
        let local = local_stream(codec.name(), &data, dims, bound, 400);
        assert_eq!(via_server, local, "{}: server stream differs", codec.name());
        let back: Vec<f64> = client.decompress_elems(&via_server).expect("decompress");
        assert_eq!(back.len(), data.len(), "{}", codec.name());
    }
}

#[test]
fn concurrent_clients_get_identical_bytes() {
    let handle = spawn_default();
    let addr = handle.addr();
    let dims = pwrel::data::Dims::d2(48, 64);
    let data: Vec<f32> = sample(dims.len());
    let reference = local_stream("sz_t", &data, dims, 1e-3, 1024);
    let codec_id = global().by_name("sz_t").unwrap().id();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let data = &data;
                let reference = &reference;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for _ in 0..3 {
                        let got = server_stream(&mut client, codec_id, data, dims, 1e-3, 1024);
                        assert_eq!(&got, reference, "concurrent stream differs");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
}

#[test]
fn info_ping_codecs_metrics_respond() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.server_version(), proto::PROTO_VERSION);
    client.ping().expect("ping");

    let codecs = client.codecs().expect("codecs");
    for name in ["sz_t", "zfp_t", "zfp_p", "fpzip", "isabela"] {
        assert!(codecs.contains(name), "codec listing misses {name}");
    }

    let dims = pwrel::data::Dims::d1(600);
    let data: Vec<f32> = sample(dims.len());
    let codec_id = global().by_name("sz_t").unwrap().id();
    let stream = server_stream(&mut client, codec_id, &data, dims, 1e-2, 200);
    let info = client.info(&stream).expect("info");
    assert!(info.contains("framed stream"), "{info}");

    let metrics = client.metrics().expect("metrics");
    for line in [
        "pwrp_requests_total",
        "pwrp_connections_open",
        "pwrp_latency_p50_us",
        "trace_span_serve.compress_ns_total",
    ] {
        assert!(metrics.contains(line), "metrics misses {line}:\n{metrics}");
    }
}

// ---------------------------------------------------------------------
// 2. Hostile input maps to a status, never a panic.
// ---------------------------------------------------------------------

/// Raw-socket helper: handshake manually, send `payload`, read the
/// response prefix (and error message when non-OK). Returns
/// `(msg_type, request_id, status, msg)`.
fn raw_exchange(
    addr: std::net::SocketAddr,
    hello: &[u8],
    payload: &[u8],
) -> std::io::Result<(u8, u32, u8, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(20)))?;
    let mut server_hello = [0u8; 5];
    stream.read_exact(&mut server_hello)?;
    assert_eq!(&server_hello[..4], proto::HELLO_MAGIC);
    stream.write_all(hello)?;
    stream.write_all(payload)?;
    stream.flush()?;
    let mut prefix = [0u8; 6];
    stream.read_exact(&mut prefix)?;
    let msg_type = prefix[0];
    let request_id = u32::from_le_bytes([prefix[1], prefix[2], prefix[3], prefix[4]]);
    let status = prefix[5];
    let msg = if status != proto::ST_OK {
        proto::decode_error_msg(&mut stream).unwrap_or_default()
    } else {
        String::new()
    };
    Ok((msg_type, request_id, status, msg))
}

/// After a hostile exchange the server must still serve new clients.
fn assert_still_serving(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("reconnect after hostile input");
    client.ping().expect("ping after hostile input");
}

#[test]
fn bad_hello_magic_closes_the_connection() {
    let handle = spawn_default();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .unwrap();
    let mut server_hello = [0u8; 5];
    stream.read_exact(&mut server_hello).unwrap();
    stream.write_all(b"HTTP/1.1\r\n").unwrap();
    // No response is owed to a peer that failed the handshake; the
    // connection just ends.
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "server sent bytes after a bad hello: {rest:?}");
    assert_still_serving(handle.addr());
}

#[test]
fn version_zero_is_refused_as_unsupported() {
    let handle = spawn_default();
    let mut hello = proto::HELLO_MAGIC.to_vec();
    hello.push(0); // NO_COMMON_VERSION
    let (msg_type, id, status, msg) = raw_exchange(handle.addr(), &hello, &[]).unwrap();
    assert_eq!(msg_type, proto::MSG_CONNECTION);
    assert_eq!(id, 0);
    assert_eq!(status, proto::ST_UNSUPPORTED_VERSION);
    assert!(msg.contains("version 1"), "{msg}");
    assert_still_serving(handle.addr());
}

#[test]
fn unknown_request_type_is_bad_request() {
    let handle = spawn_default();
    let hello = proto::encode_hello(proto::PROTO_VERSION);
    // Type 0x77, request id 9.
    let payload = [0x77u8, 9, 0, 0, 0];
    let (msg_type, id, status, msg) = raw_exchange(handle.addr(), &hello, &payload).unwrap();
    assert_eq!(msg_type, 0x77, "error echoes the request type");
    assert_eq!(id, 9, "error echoes the request id");
    assert_eq!(status, proto::ST_BAD_REQUEST);
    assert!(msg.contains("unknown request type"), "{msg}");
    assert_still_serving(handle.addr());
}

#[test]
fn unknown_codec_id_is_rejected_before_the_body() {
    let handle = spawn_default();
    let hello = proto::encode_hello(proto::PROTO_VERSION);
    let mut payload = Vec::new();
    proto::encode_request_prefix(
        &mut payload,
        proto::RequestPrefix {
            msg_type: proto::MSG_COMPRESS,
            request_id: 1,
        },
    );
    proto::encode_compress_header(
        &mut payload,
        &CompressHeader {
            codec_id: 250,
            elem_bits: 32,
            base: pwrel::core::LogBase::Two,
            bound: 1e-3,
            dims: pwrel::data::Dims::d1(16),
            chunk_elems: 0,
        },
    );
    let (_, _, status, msg) = raw_exchange(handle.addr(), &hello, &payload).unwrap();
    assert_eq!(status, proto::ST_UNKNOWN_CODEC);
    assert!(msg.contains("250"), "{msg}");
    assert_still_serving(handle.addr());
}

#[test]
fn corrupt_body_mid_stream_is_a_corrupt_trailer() {
    let handle = spawn_default();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A genuine framed stream with its tail replaced by garbage: the
    // PWS1 header parses (so the server answers OK and starts framing)
    // and the chunk walk then fails — the error must arrive as a
    // non-OK trailer, which surfaces as a Status error client-side.
    let dims = pwrel::data::Dims::d1(4096);
    let data: Vec<f32> = sample(dims.len());
    let mut stream = local_stream("sz_t", &data, dims, 1e-3, 1024);
    let tail = stream.len().saturating_sub(stream.len() / 2);
    for b in &mut stream[tail..] {
        *b ^= 0xA5;
    }
    let err = client.decompress_elems::<f32>(&stream).unwrap_err();
    match err {
        pwrel_serve::ServeError::Status { code, .. } => {
            assert_eq!(code, proto::ST_CORRUPT, "want corrupt, got {code}")
        }
        other => panic!("want a corrupt status, got {other:?}"),
    }
    assert_still_serving(handle.addr());
}

#[test]
fn garbage_decompress_body_is_rejected_cleanly() {
    // Short server read timeout: the truncated case below stalls the
    // header read and must resolve as a timeout, not hang the test.
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout_ms: 400,
        ..Default::default()
    });
    for junk in [
        vec![0u8; 64],
        vec![0xFFu8; 64],
        b"PWS1".to_vec(), // magic then truncation: looks like a stall
    ] {
        let mut client = Client::connect(handle.addr()).expect("connect");
        let err = client.decompress_elems::<f32>(&junk).unwrap_err();
        match err {
            pwrel_serve::ServeError::Status { code, .. } => assert!(
                code == proto::ST_CORRUPT
                    || code == proto::ST_BAD_REQUEST
                    || code == proto::ST_TIMEOUT,
                "unexpected status {code} for {junk:?}"
            ),
            other => panic!("want a status error, got {other:?}"),
        }
    }
    assert_still_serving(handle.addr());
}

#[test]
fn body_over_quota_is_a_quota_error() {
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        quota_bytes: 4096,
        ..Default::default()
    });
    let dims = pwrel::data::Dims::d1(8192); // 32 KiB body >> 4 KiB quota
    let data: Vec<f32> = sample(dims.len());
    let mut client = Client::connect(handle.addr()).expect("connect");
    let codec_id = global().by_name("sz_t").unwrap().id();
    let mut body = Vec::new();
    for v in &data {
        v.write_le(&mut body);
    }
    let header = CompressHeader {
        codec_id,
        elem_bits: 32,
        base: pwrel::core::LogBase::Two,
        bound: 1e-3,
        dims,
        chunk_elems: 0,
    };
    let mut src: &[u8] = &body;
    let mut out = Vec::new();
    let err = client
        .compress_stream(&header, &mut src, &mut out)
        .unwrap_err();
    match err {
        pwrel_serve::ServeError::Status { code, .. } => assert_eq!(code, proto::ST_QUOTA),
        other => panic!("want quota status, got {other:?}"),
    }
    assert_still_serving(handle.addr());
}

#[test]
fn shape_over_element_cap_is_too_large() {
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_request_elems: 1000,
        ..Default::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    let err = client
        .compress_elems::<f32>(
            0,
            &[1.0f32; 8],
            // The header claims far more elements than the cap; the
            // server must reject it before reading any body.
            pwrel::data::Dims::d3(100, 100, 100),
            1e-3,
            pwrel::core::LogBase::Two,
        )
        .unwrap_err();
    match err {
        pwrel_serve::ServeError::Status { code, msg } => {
            assert_eq!(code, proto::ST_TOO_LARGE);
            assert!(msg.contains("1000000"), "{msg}");
        }
        other => panic!("want too_large status, got {other:?}"),
    }
    assert_still_serving(handle.addr());
}

#[test]
fn slowloris_partial_header_times_out() {
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout_ms: 300,
        ..Default::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .unwrap();
    let mut server_hello = [0u8; 5];
    stream.read_exact(&mut server_hello).unwrap();
    stream
        .write_all(&proto::encode_hello(proto::PROTO_VERSION))
        .unwrap();
    // Two bytes of a five-byte request prefix, then silence.
    stream.write_all(&[proto::MSG_PING, 1]).unwrap();
    stream.flush().unwrap();

    // Best effort, the server answers with a connection-level timeout
    // before dropping us.
    let mut prefix = [0u8; 6];
    stream.read_exact(&mut prefix).expect("timeout response");
    assert_eq!(prefix[0], proto::MSG_CONNECTION);
    assert_eq!(prefix[5], proto::ST_TIMEOUT);
    assert_still_serving(handle.addr());
}

// ---------------------------------------------------------------------
// 3. Overload degrades predictably.
// ---------------------------------------------------------------------

#[test]
fn connection_cap_refuses_with_busy() {
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_connections: 1,
        ..Default::default()
    });
    let first = Client::connect(handle.addr()).expect("first connection");
    // Read the refusal without writing anything: the server sends its
    // hello plus a connection-level busy and closes immediately, so a
    // client write would race into a broken pipe.
    let mut second = TcpStream::connect(handle.addr()).unwrap();
    second
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .unwrap();
    let mut server_hello = [0u8; 5];
    second.read_exact(&mut server_hello).unwrap();
    assert_eq!(&server_hello[..4], proto::HELLO_MAGIC);
    let mut prefix = [0u8; 6];
    second.read_exact(&mut prefix).unwrap();
    assert_eq!(prefix[0], proto::MSG_CONNECTION);
    assert_eq!(prefix[5], proto::ST_BUSY);
    drop(first);
}

#[test]
fn inflight_cap_rejects_heavy_requests_with_busy() {
    let handle = spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_inflight: 1,
        ..Default::default()
    });
    // Connection A opens a compress request and stalls mid-body,
    // holding the only in-flight slot.
    let mut a = TcpStream::connect(handle.addr()).unwrap();
    let mut server_hello = [0u8; 5];
    a.read_exact(&mut server_hello).unwrap();
    a.write_all(&proto::encode_hello(proto::PROTO_VERSION))
        .unwrap();
    let mut payload = Vec::new();
    proto::encode_request_prefix(
        &mut payload,
        proto::RequestPrefix {
            msg_type: proto::MSG_COMPRESS,
            request_id: 1,
        },
    );
    proto::encode_compress_header(
        &mut payload,
        &CompressHeader {
            codec_id: global().by_name("sz_t").unwrap().id(),
            elem_bits: 32,
            base: pwrel::core::LogBase::Two,
            bound: 1e-3,
            dims: pwrel::data::Dims::d1(1 << 20),
            chunk_elems: 0,
        },
    );
    a.write_all(&payload).unwrap();
    a.flush().unwrap();
    // Give the server time to parse the header and take the slot.
    std::thread::sleep(std::time::Duration::from_millis(300));

    // Connection B's heavy request must bounce with busy.
    let mut b = Client::connect(handle.addr()).expect("second connection");
    let err = b
        .compress_elems::<f32>(
            global().by_name("sz_t").unwrap().id(),
            &sample::<f32>(64),
            pwrel::data::Dims::d1(64),
            1e-3,
            pwrel::core::LogBase::Two,
        )
        .unwrap_err();
    match err {
        pwrel_serve::ServeError::Status { code, .. } => assert_eq!(code, proto::ST_BUSY),
        other => panic!("want busy, got {other:?}"),
    }

    // Light requests still pass while the slot is held.
    let mut c = Client::connect(handle.addr()).expect("third connection");
    c.ping().expect("light request under load");
    drop(a);
}
