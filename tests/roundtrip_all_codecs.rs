//! Cross-crate integration: every point-wise-relative codec on every
//! synthetic application dataset, verifying the bound contract end-to-end.

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{all_datasets, Field, Scale};
use pwrel::fpzip::FpzipCompressor;
use pwrel::isabela::IsabelaCompressor;
use pwrel::metrics::RelErrorStats;
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;

/// Strict contract: bound holds everywhere and zeros decode exactly.
fn assert_strict(field: &Field<f32>, dec: &[f32], br: f64, tag: &str) {
    let stats = RelErrorStats::compute(&field.data, dec, br);
    assert_eq!(
        stats.broken_zeros, 0,
        "{tag} on {}: {} zeros broken",
        field.name, stats.broken_zeros
    );
    assert!(
        stats.max_rel <= br,
        "{tag} on {}: max rel {} > {br}",
        field.name,
        stats.max_rel
    );
}

#[test]
fn sz_t_strict_on_all_datasets() {
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    for ds in all_datasets(Scale::Small) {
        for field in &ds.fields {
            for br in [1e-3, 1e-1] {
                let s = codec.compress(&field.data, field.dims, br).unwrap();
                let dec: Vec<f32> = codec.decompress(&s).unwrap();
                assert_strict(field, &dec, br, "SZ_T");
            }
        }
    }
}

#[test]
fn zfp_t_strict_on_all_datasets() {
    let codec = PwRelCompressor::new(ZfpCompressor, LogBase::Two);
    for ds in all_datasets(Scale::Small) {
        for field in &ds.fields {
            let s = codec.compress(&field.data, field.dims, 1e-2).unwrap();
            let dec: Vec<f32> = codec.decompress(&s).unwrap();
            assert_strict(field, &dec, 1e-2, "ZFP_T");
        }
    }
}

#[test]
fn fpzip_strict_on_all_datasets() {
    for ds in all_datasets(Scale::Small) {
        for field in &ds.fields {
            let br = 1e-2;
            let codec = FpzipCompressor::for_rel_bound::<f32>(br);
            let s = codec.compress(&field.data, field.dims).unwrap();
            let (dec, _) = pwrel::fpzip::decompress::<f32>(&s).unwrap();
            assert_strict(field, &dec, br, "FPZIP");
        }
    }
}

#[test]
fn isabela_strict_on_all_datasets() {
    let codec = IsabelaCompressor::default();
    for ds in all_datasets(Scale::Small) {
        for field in &ds.fields {
            let s = codec.compress_rel(&field.data, field.dims, 1e-2).unwrap();
            let (dec, _) = pwrel::isabela::decompress::<f32>(&s).unwrap();
            assert_strict(field, &dec, 1e-2 * (1.0 + 1e-12), "ISABELA");
        }
    }
}

#[test]
fn sz_pwr_bounded_on_nonzero_data() {
    // SZ_PWR guarantees the bound for non-zero values; zeros may come back
    // approximate (the paper's `*`). Check both behaviours.
    let codec = SzCompressor::default();
    for ds in all_datasets(Scale::Small) {
        for field in &ds.fields {
            let br = 1e-2;
            let s = codec.compress_pwr(&field.data, field.dims, br).unwrap();
            let (dec, _) = codec.decompress::<f32>(&s).unwrap();
            for (idx, (&a, &b)) in field.data.iter().zip(&dec).enumerate() {
                if a != 0.0 {
                    let rel = ((a as f64 - b as f64) / a as f64).abs();
                    assert!(rel <= br, "SZ_PWR on {} idx {idx}: rel {rel}", field.name);
                }
            }
        }
    }
}

#[test]
fn sz_t_dominates_baselines_on_every_dataset() {
    // The headline Figure 2 claim at one representative bound.
    let br = 1e-2;
    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let sz = SzCompressor::default();
    let isa = IsabelaCompressor::default();
    for ds in all_datasets(Scale::Small) {
        let mut raw = 0usize;
        let (mut t, mut pwr, mut isab) = (0usize, 0usize, 0usize);
        for field in &ds.fields {
            raw += field.nbytes();
            t += sz_t.compress(&field.data, field.dims, br).unwrap().len();
            pwr += sz.compress_pwr(&field.data, field.dims, br).unwrap().len();
            isab += isa.compress_rel(&field.data, field.dims, br).unwrap().len();
        }
        let _ = raw;
        assert!(t < pwr, "{}: SZ_T {} !< SZ_PWR {}", ds.name, t, pwr);
        assert!(t < isab, "{}: SZ_T {} !< ISABELA {}", ds.name, t, isab);
    }
}

#[test]
fn f64_pipeline_end_to_end() {
    let ds = all_datasets(Scale::Small);
    let field = ds[2].fields[0].to_f64(); // NYX dark matter density
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let s = codec.compress(&field.data, field.dims, 1e-4).unwrap();
    let dec: Vec<f64> = codec.decompress(&s).unwrap();
    for (&a, &b) in field.data.iter().zip(&dec) {
        if a != 0.0 {
            assert!(((a - b) / a).abs() <= 1e-4);
        } else {
            assert_eq!(b, 0.0);
        }
    }
}

#[test]
fn streams_are_self_identifying() {
    // Feeding one codec's stream to another must error, never panic or
    // silently decode.
    let field = &all_datasets(Scale::Small)[2].fields[0];
    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let sz_stream = SzCompressor::default()
        .compress_abs(&field.data, field.dims, 0.1)
        .unwrap();
    let pwt_stream = sz_t.compress(&field.data, field.dims, 0.1).unwrap();
    let zfp_stream = ZfpCompressor
        .compress_accuracy(&field.data, field.dims, 0.1)
        .unwrap();

    assert!(sz_t.decompress::<f32>(&sz_stream).is_err());
    assert!(SzCompressor::default()
        .decompress::<f32>(&zfp_stream)
        .is_err());
    assert!(ZfpCompressor.decompress::<f32>(&pwt_stream).is_err());
    assert!(pwrel::fpzip::decompress::<f32>(&sz_stream).is_err());
    assert!(pwrel::isabela::decompress::<f32>(&pwt_stream).is_err());
}
