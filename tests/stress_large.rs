//! Large-scale stress tests (ignored by default; run with
//! `cargo test --release -- --ignored`).

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{nyx, Scale};
use pwrel::metrics::{compression_ratio, RelErrorStats};
use pwrel::sz::SzCompressor;

#[test]
#[ignore = "large-scale: ~128 MB working set, run explicitly in release"]
fn sz_t_bounded_on_large_nyx_density() {
    let field = nyx::dark_matter_density(Scale::Large); // 256^3
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let br = 1e-2;
    let stream = codec.compress(&field.data, field.dims, br).unwrap();
    let dec: Vec<f32> = codec.decompress(&stream).unwrap();
    let stats = RelErrorStats::compute(&field.data, &dec, br);
    assert_eq!(stats.broken_zeros, 0);
    assert!(stats.max_rel <= br, "max rel {}", stats.max_rel);
    let cr = compression_ratio(field.nbytes(), stream.len());
    assert!(cr > 4.0, "cr = {cr}");
}

#[test]
#[ignore = "large-scale: 32M-particle HACC component"]
fn hacc_large_round_trip() {
    let field = pwrel::data::hacc::velocity(Scale::Large, 'x');
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let stream = codec.compress(&field.data, field.dims, 1e-1).unwrap();
    let dec: Vec<f32> = codec.decompress(&stream).unwrap();
    let stats = RelErrorStats::compute(&field.data, &dec, 1e-1);
    assert!(stats.max_rel <= 1e-1);
}
