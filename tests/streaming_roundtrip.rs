//! Round-trip equivalence between the streamed out-of-core path (framed
//! `PWS1` streams, bounded memory) and the existing one-shot path, for
//! every registered codec at both precisions.
//!
//! Two stream-level invariants hold exactly:
//!
//! 1. **Single-chunk equivalence.** A framed stream whose one frame
//!    covers the whole field carries the codec's native stream verbatim,
//!    so its reconstruction is byte-identical to the one-shot container
//!    path on the same input.
//! 2. **Chunked determinism.** The pipelined `ChunkedCodec` engine emits
//!    bytes identical to the sequential registry engine at any worker
//!    count, and decoding a framed stream chunk-by-chunk reconstructs
//!    byte-identically to handing the same bytes to the one-shot
//!    `decompress` entry.
//!
//! Multi-chunk *compression* legitimately reconstructs differently from
//! whole-field compression (predictor context resets at slab
//! boundaries), so the cross-path guarantee is at the stream level, not
//! chunk-grain versus whole-field.

use proptest::prelude::*;
use pwrel::data::{Dims, Float};
use pwrel::parallel::{ChunkedCodec, WorkerPool};
use pwrel::pipeline::{global, CompressOpts, PipelineElem, SliceSource, VecSink};

fn bits<F: Float>(v: &[F]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits_u64()).collect()
}

/// Sequential registry engine: framed bytes for `data`.
fn framed_seq<F: PipelineElem>(
    name: &str,
    data: &[F],
    dims: Dims,
    opts: &CompressOpts,
    chunk_elems: usize,
) -> Vec<u8> {
    let mut src = SliceSource::new(data);
    let mut out = Vec::new();
    global()
        .compress_stream::<F>(name, &mut src, &mut out, dims, opts, chunk_elems)
        .unwrap();
    out
}

/// Decodes a framed stream chunk-by-chunk through the registry.
fn decode_seq<F: PipelineElem>(stream: &[u8]) -> Vec<F> {
    let mut sink = VecSink::new();
    global()
        .decompress_stream::<F>(&mut &stream[..], &mut sink)
        .unwrap();
    sink.into_inner()
}

/// Checks both invariants for one codec on one input.
fn check_codec<F: PipelineElem>(
    name: &str,
    data: &[F],
    dims: Dims,
    bound: f64,
    chunk_elems: usize,
    workers: usize,
) {
    let opts = CompressOpts::rel(bound);

    // 1. Single-chunk streamed round trip == one-shot round trip.
    let oneshot = global().compress::<F>(name, data, dims, &opts).unwrap();
    let (dec_oneshot, d) = global().decompress::<F>(&oneshot).unwrap();
    assert_eq!(d, dims, "{name}: one-shot dims");
    let whole = framed_seq::<F>(name, data, dims, &opts, dims.len());
    let dec_whole = decode_seq::<F>(&whole);
    assert_eq!(
        bits(&dec_oneshot),
        bits(&dec_whole),
        "{name}: single-chunk streamed reconstruction diverges from one-shot"
    );

    // 2a. Pipelined compress bytes == sequential compress bytes.
    let seq = framed_seq::<F>(name, data, dims, &opts, chunk_elems);
    let chunked = ChunkedCodec::new(WorkerPool::new(workers), chunk_elems);
    let mut src = SliceSource::new(data);
    let mut par = Vec::new();
    chunked
        .compress_stream::<F>(global(), name, &mut src, &mut par, dims, &opts)
        .unwrap();
    assert_eq!(seq, par, "{name}: pipelined stream bytes diverge");

    // 2b. Chunk-by-chunk decode == pipelined decode == one-shot decode
    // of the same framed bytes.
    let dec_seq = decode_seq::<F>(&seq);
    let mut sink = VecSink::new();
    chunked
        .decompress_stream::<F>(global(), &mut &seq[..], &mut sink)
        .unwrap();
    let dec_par = sink.into_inner();
    let (dec_oneshot, d) = global().decompress::<F>(&seq).unwrap();
    assert_eq!(d, dims, "{name}: framed one-shot dims");
    assert_eq!(
        bits(&dec_seq),
        bits(&dec_par),
        "{name}: pipelined decode diverges"
    );
    assert_eq!(
        bits(&dec_seq),
        bits(&dec_oneshot),
        "{name}: streamed decode diverges from one-shot decode"
    );
}

/// Deterministic multi-decade field with embedded zeros.
fn sample<F: Float>(n: usize) -> Vec<F> {
    (0..n)
        .map(|i| {
            if i % 53 == 0 {
                return F::zero();
            }
            let mag = 10f64.powi((i % 9) as i32 - 4);
            F::from_f64(((i as f64) * 0.37).sin().mul_add(0.45, 0.55) * mag)
        })
        .collect()
}

#[test]
fn all_codecs_equivalent_f32_and_f64() {
    let dims = Dims::d2(16, 24);
    let data32 = sample::<f32>(dims.len());
    let data64 = sample::<f64>(dims.len());
    for codec in global().iter() {
        let name = codec.name();
        check_codec::<f32>(name, &data32, dims, 1e-2, 4 * 16, 3);
        check_codec::<f64>(name, &data64, dims, 1e-2, 4 * 16, 3);
    }
}

#[test]
fn equivalence_holds_on_3d_grids() {
    let dims = Dims::d3(8, 12, 10);
    let data32 = sample::<f32>(dims.len());
    let data64 = sample::<f64>(dims.len());
    for codec in global().iter() {
        let name = codec.name();
        check_codec::<f32>(name, &data32, dims, 1e-3, 3 * 8 * 12, 2);
        check_codec::<f64>(name, &data64, dims, 1e-3, 3 * 8 * 12, 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random field content, chunk grain, bound and worker count: the
    // stream-level equivalences must hold for every registered codec at
    // both precisions.
    #[test]
    fn streamed_equals_oneshot_for_all_codecs(
        raw in prop::collection::vec(-1000.0f64..1000.0, (16 * 24)..(16 * 24 + 1)),
        chunk_slices in 1usize..24,
        which_bound in 0usize..3,
        workers in 1usize..5,
    ) {
        let dims = Dims::d2(16, 24);
        let bound = [1e-1, 1e-2, 1e-3][which_bound];
        let chunk_elems = chunk_slices * 16;
        let data32: Vec<f32> = raw.iter().map(|&v| v as f32).collect();
        let data64: Vec<f64> = raw.clone();
        for codec in global().iter() {
            let name = codec.name();
            check_codec::<f32>(name, &data32, dims, bound, chunk_elems, workers);
            check_codec::<f64>(name, &data64, dims, bound, chunk_elems, workers);
        }
    }
}
