//! Error-distribution signatures of the real codecs (after the paper's
//! reference [7]): SZ's linear-scaling quantization leaves near-uniform
//! errors; the bound is tight against the error support.

use pwrel::data::{grf, Dims};
use pwrel::metrics::ErrorDistribution;
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;

#[test]
fn sz_errors_are_near_uniform_within_the_bound() {
    let dims = Dims::d2(128, 128);
    let data = grf::gaussian_field(dims, 21, 2, 2);
    let eb = 1e-3;
    let sz = SzCompressor::default();
    let (dec, _) = sz
        .decompress::<f32>(&sz.compress_abs(&data, dims, eb).unwrap())
        .unwrap();
    let dist = ErrorDistribution::compute(&data, &dec, 20, Some(eb));
    // Unbiased, flat-ish, and filling the [-eb, eb] support.
    assert!(dist.mean.abs() < eb * 0.05, "bias {}", dist.mean);
    assert!(
        dist.excess_kurtosis < -0.6,
        "SZ errors should look uniform (kurtosis {})",
        dist.excess_kurtosis
    );
    assert!(
        dist.uniformity_distance() < 0.15,
        "uniformity distance {}",
        dist.uniformity_distance()
    );
    // Quantization uses the whole ±eb interval.
    assert!(dist.std > eb * 0.4, "std {} vs eb {eb}", dist.std);
}

#[test]
fn zfp_errors_are_peaked_relative_to_its_bound() {
    // ZFP's conservative cutoff leaves errors far inside the tolerance:
    // relative to the *requested* bound the distribution is strongly
    // concentrated near zero — the over-preservation of Table IV.
    let dims = Dims::d2(128, 128);
    let data = grf::gaussian_field(dims, 22, 2, 2);
    let tol = 1e-3;
    let zfp = ZfpCompressor;
    let (dec, _) = zfp
        .decompress::<f32>(&zfp.compress_accuracy(&data, dims, tol).unwrap())
        .unwrap();
    let dist = ErrorDistribution::compute(&data, &dec, 20, Some(tol));
    assert!(
        dist.central_mass() > 0.9,
        "ZFP errors should sit well inside the tolerance (central mass {})",
        dist.central_mass()
    );
    assert!(dist.std < tol * 0.2, "std {} vs tol {tol}", dist.std);
}
