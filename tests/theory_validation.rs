//! Empirical validation of the paper's theory against the real coders.
//!
//! The unit tests in `pwrel-core` check the theorems as formulas; here we
//! check them against the actual compression pipeline: Theorem 3 on SZ's
//! real quantization indices, Theorem 2's uniqueness by showing a
//! plausible *alternative* mapping breaks the bound, and Lemma 4 through
//! compressed sizes.

use pwrel::core::{theory, transform, LogBase, PwRelCompressor};
use pwrel::data::{nyx, Dims, Scale};
use pwrel::sz::{self, SzCompressor};

/// Theorem 3: quantization indices under two bases differ by at most
/// `neighbours × |log_{1+br}(1−br) − 1|` (plus one for the rounding of the
/// index itself), measured on the real SZ coder.
#[test]
fn theorem3_quant_index_deviation_on_real_coder() {
    let field = nyx::dark_matter_density(Scale::Small);
    let cfg = SzCompressor::default();
    for br in [1e-3, 1e-2, 1e-1] {
        let codes: Vec<Vec<u32>> = [LogBase::Two, LogBase::E, LogBase::Ten]
            .iter()
            .map(|&base| {
                let t = transform::forward(&field.data, base, br, 2.0).unwrap();
                sz::quantization_codes(&t.mapped, field.dims, t.abs_bound, &cfg)
            })
            .collect();
        // Theorem 3's bound for 3D (7 neighbours), plus 1 for the final
        // round() of the index itself.
        let limit = (7.0 * theory::quant_index_deviation(br)).ceil() + 1.0;
        let mut worst = 0i64;
        let mut diffs = 0usize;
        for (a, b) in codes[0].iter().zip(&codes[1]) {
            if *a == 0 || *b == 0 {
                continue; // unpredictable escapes have no index
            }
            let d = (*a as i64 - *b as i64).abs();
            worst = worst.max(d);
            if d > 0 {
                diffs += 1;
            }
        }
        assert!(
            (worst as f64) <= limit,
            "br {br}: worst index deviation {worst} > theorem bound {limit}"
        );
        // Deviations should also be rare, not just bounded.
        assert!(
            diffs < codes[0].len() / 2,
            "br {br}: {diffs}/{} indices moved",
            codes[0].len()
        );
    }
}

/// Theorem 2 (uniqueness): a square-root mapping with the matching bound
/// map fails to deliver the relative bound that the log mapping delivers.
#[test]
fn alternative_sqrt_mapping_violates_relative_bound() {
    // Candidate scheme: f(x) = sqrt(x), b_a chosen so the bound holds at
    // x = 1 (any single calibration point; uniqueness says no constant
    // works for all x).
    let br = 0.1f64;
    let ba = (1.0f64 + br).sqrt() - 1.0;
    let mut worst: f64 = 0.0;
    for x in [1e-6f64, 1e-2, 1.0, 1e2, 1e6] {
        let rec = (x.sqrt() + ba).powi(2); // worst-case +ba excursion
        worst = worst.max((rec - x).abs() / x);
    }
    assert!(
        worst > 10.0 * br,
        "sqrt mapping should blow the bound on small x (worst {worst})"
    );

    // The log mapping with its g(br) holds everywhere, by contrast.
    let ba_log = theory::abs_bound_for(LogBase::Two, br);
    let mut worst_log: f64 = 0.0;
    for x in [1e-6f64, 1e-2, 1.0, 1e2, 1e6] {
        let rec = (x.log2() + ba_log).exp2();
        worst_log = worst_log.max((rec - x).abs() / x);
    }
    assert!(
        worst_log <= br * (1.0 + 1e-9),
        "log mapping worst {worst_log}"
    );
}

/// Lemma 3/4 at the pipeline level: compressed sizes across bases agree to
/// a few percent for both SZ_T and ZFP_T.
#[test]
fn base_choice_does_not_move_compressed_sizes() {
    let field = nyx::velocity_x(Scale::Small);
    for br in [1e-3, 1e-1] {
        let sz_sizes: Vec<usize> = [LogBase::Two, LogBase::E, LogBase::Ten]
            .iter()
            .map(|&b| {
                PwRelCompressor::new(SzCompressor::default(), b)
                    .compress(&field.data, field.dims, br)
                    .unwrap()
                    .len()
            })
            .collect();
        let max = *sz_sizes.iter().max().unwrap() as f64;
        let min = *sz_sizes.iter().min().unwrap() as f64;
        assert!(max / min < 1.06, "br {br}: sizes {sz_sizes:?}");
    }
}

/// The error-bound mapping is exercised end-to-end: compressing in the
/// transformed domain with exactly `g(b_r)` (no round-off guard) on
/// *narrow-range* data still holds, because the correction term is only
/// needed when `max|log x|·ε0` is comparable to the bound.
#[test]
fn guardless_bound_holds_on_narrow_range_data() {
    let dims = Dims::d1(10_000);
    let data: Vec<f32> = (0..dims.len())
        .map(|i| 1.0 + 0.5 * ((i as f32) * 0.01).sin())
        .collect();
    let mut codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    codec.roundoff_guard = 0.0;
    let br = 1e-3;
    let stream = codec.compress(&data, dims, br).unwrap();
    let dec: Vec<f32> = codec.decompress(&stream).unwrap();
    for (&a, &b) in data.iter().zip(&dec) {
        assert!(((a as f64 - b as f64) / a as f64).abs() <= br * (1.0 + 1e-9));
    }
}
