//! Decoder robustness: corrupted or truncated streams must produce errors
//! (or garbage data of the right shape), never panics or unbounded
//! allocations.

use proptest::prelude::*;
use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::Dims;
use pwrel::fpzip::FpzipCompressor;
use pwrel::isabela::IsabelaCompressor;
use pwrel::lossless::lz;
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;

fn read_uvarint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return value;
        }
        shift += 7;
    }
}

fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Uvarint image of the interleaved Huffman marker `(1 << 29) | 4` that
/// leads every 4-way packed buffer.
const INTERLEAVED_MARKER_BYTES: [u8; 5] = [0x84, 0x80, 0x80, 0x80, 0x02];

/// Descriptor forgeries for the first interleaved Huffman buffer inside
/// a raw byte image: each `(what, forged_copy)` violates one field the
/// format makes fully redundant (lane symbol counts must equal the
/// round-robin split of `n`, lane byte lengths must sum to the payload
/// length, the marker routes the mode), so every entry must decode as
/// `Corrupt` — never panic — at every engine level.
fn forged_interleaved_descriptors(raw: &[u8]) -> Vec<(&'static str, Vec<u8>)> {
    let at = raw
        .windows(INTERLEAVED_MARKER_BYTES.len())
        .position(|w| w == INTERLEAVED_MARKER_BYTES)
        .expect("interleaved marker present");
    // Walk marker | table (alphabet, n_used, n_used x (delta, len)) |
    // n | payload_len to the descriptor's count and length fields.
    let mut pos = at + INTERLEAVED_MARKER_BYTES.len();
    read_uvarint(raw, &mut pos);
    let n_used = read_uvarint(raw, &mut pos);
    for _ in 0..2 * n_used {
        read_uvarint(raw, &mut pos);
    }
    read_uvarint(raw, &mut pos);
    read_uvarint(raw, &mut pos);
    let counts_at = pos;
    for _ in 0..4 {
        read_uvarint(raw, &mut pos);
    }
    let lens_at = pos;
    for _ in 0..4 {
        read_uvarint(raw, &mut pos);
    }
    let payload_at = pos;

    let mut bad_count = raw.to_vec();
    bad_count[counts_at] ^= 0x01;
    let mut bad_len = raw.to_vec();
    bad_len[lens_at] ^= 0x01;
    let mut bad_marker = raw.to_vec();
    bad_marker[at + 4] = 0x03; // marker becomes (3 << 28) | 4: legacy route
    let mut overflow = raw[..lens_at].to_vec();
    for _ in 0..4 {
        write_uvarint(&mut overflow, u64::MAX / 2);
    }
    overflow.extend_from_slice(&raw[payload_at..]);
    vec![
        ("lane symbol count off by one", bad_count),
        ("lane byte length off by one", bad_len),
        ("marker tag corrupted", bad_marker),
        ("lane byte lengths overflow", overflow),
    ]
}

/// Splits a `PWT1` transform container into its header prefix (through
/// the sign section, before the inner-length field) and the *raw* inner
/// SZ body, undoing the inner stream's optional LZ wrapper so forgeries
/// can address the Huffman bytes directly.
fn split_transform(pwt1: &[u8]) -> (Vec<u8>, Vec<u8>) {
    assert_eq!(&pwt1[..4], b"PWT1");
    let mut pos = 4 + 1 + 1 + 1 + 8 + 8; // magic, width, base, sign flag, bounds
    if pwt1[6] == 1 {
        let n = read_uvarint(pwt1, &mut pos);
        pos += n as usize;
    }
    let len_at = pos;
    let inner_len = read_uvarint(pwt1, &mut pos) as usize;
    assert_eq!(
        pos + inner_len,
        pwt1.len(),
        "inner stream fills the container"
    );
    let inner = &pwt1[pos..];
    let raw = match inner[0] {
        0 => inner[1..].to_vec(),
        1 => lz::decompress(&inner[1..]).expect("valid LZ wrapper"),
        w => panic!("unknown SZ wrapper byte {w}"),
    };
    (pwt1[..len_at].to_vec(), raw)
}

/// Re-assembles a `PWT1` container around a (possibly forged) raw SZ
/// body using the always-valid uncompressed wrapper.
fn rebuild_transform(prefix: &[u8], raw_body: &[u8]) -> Vec<u8> {
    let mut out = prefix.to_vec();
    write_uvarint(&mut out, raw_body.len() as u64 + 1);
    out.push(0);
    out.extend_from_slice(raw_body);
    out
}

fn sample_field() -> (Vec<f32>, Dims) {
    let dims = Dims::d2(16, 24);
    let data = (0..dims.len())
        .map(|i| ((i as f32) * 0.37).sin() * 40.0 + 1.0)
        .collect();
    (data, dims)
}

/// All valid streams to mutate.
fn streams() -> Vec<(&'static str, Vec<u8>)> {
    let (data, dims) = sample_field();
    vec![
        (
            "sz_abs",
            SzCompressor::default()
                .compress_abs(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_pwr",
            SzCompressor::default()
                .compress_pwr(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "zfp",
            ZfpCompressor.compress_accuracy(&data, dims, 0.01).unwrap(),
        ),
        (
            "fpzip",
            FpzipCompressor::new(16).compress(&data, dims).unwrap(),
        ),
        (
            "isabela",
            IsabelaCompressor::default()
                .compress_rel(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_t",
            PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
                .compress(&data, dims, 0.01)
                .unwrap(),
        ),
    ]
}

/// Decodes a stream with every decoder; must never panic.
fn try_all_decoders(name: &str, bytes: &[u8]) {
    let _ = SzCompressor::default().decompress::<f32>(bytes);
    let _ = ZfpCompressor.decompress::<f32>(bytes);
    let _ = pwrel::fpzip::decompress::<f32>(bytes);
    let _ = pwrel::isabela::decompress::<f32>(bytes);
    let _ = PwRelCompressor::new(SzCompressor::default(), LogBase::Two).decompress::<f32>(bytes);
    let _ = name;
}

#[test]
fn truncation_never_panics() {
    for (name, stream) in streams() {
        for cut in 0..stream.len().min(64) {
            try_all_decoders(name, &stream[..cut]);
        }
        // Also a few cuts spread through the body.
        for frac in 1..8 {
            let cut = stream.len() * frac / 8;
            try_all_decoders(name, &stream[..cut]);
        }
    }
}

#[test]
fn single_byte_flips_never_panic() {
    for (name, stream) in streams() {
        // Exhaustive over header bytes, sampled over the body.
        let positions: Vec<usize> = (0..stream.len().min(48))
            .chain((48..stream.len()).step_by(37))
            .collect();
        for pos in positions {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = stream.clone();
                bad[pos] ^= flip;
                try_all_decoders(name, &bad);
            }
        }
    }
}

/// Targeted forgeries for decode-path panic sites converted to
/// structured errors (audit lint L1): each test drives the exact parse
/// the site guards and asserts an `Err`, not a panic.
mod forged {
    use super::*;
    use pwrel::data::CodecError;
    use pwrel::lossless::huffman;
    use pwrel::pipeline::container;
    use pwrel::sz::regression::LinearModel;
    use pwrel::sz::{SzMode, SzStream};

    /// `PwRelCompressor::decompress_full` header reads (and the
    /// `bytesio::take_n` f64 reads behind them): every truncation of the
    /// `PWT1` header must error.
    #[test]
    fn truncated_transform_header_errors() {
        let (data, dims) = sample_field();
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let stream = codec.compress(&data, dims, 0.01).unwrap();
        for cut in 0..stream.len().min(40) {
            assert!(
                codec.decompress::<f32>(&stream[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    /// ZFP header byte reads in `decompress`: a stream cut inside the
    /// 7-byte header must error, never index out of bounds.
    #[test]
    fn truncated_zfp_header_errors() {
        let (data, dims) = sample_field();
        let stream = ZfpCompressor.compress_accuracy(&data, dims, 0.01).unwrap();
        for cut in 0..8 {
            assert!(
                ZfpCompressor.decompress::<f32>(&stream[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    /// Unified-container magic probe on inputs shorter than the magic.
    #[test]
    fn short_container_probe_is_safe() {
        assert!(!container::is_unified(b""));
        assert!(!container::is_unified(b"PW"));
        assert!(container::unwrap(b"PWU1").is_err());
    }

    /// `LinearModel::read` on every short prefix.
    #[test]
    fn truncated_regression_model_is_none() {
        let buf = [0u8; LinearModel::NBYTES];
        for len in 0..LinearModel::NBYTES {
            assert!(LinearModel::read(&buf[..len]).is_none(), "len={len}");
        }
    }

    /// A hybrid stream whose selector bitmap promises one regression
    /// model but whose model section is a byte short: the decoder must
    /// surface `Corrupt`, not slice out of bounds.
    #[test]
    fn hybrid_stream_with_truncated_model_errors() {
        let dims = Dims::d1(6); // exactly one 6-point block
        let capacity = 65536u32;
        let radius = capacity / 2;
        let codes = vec![radius; dims.len()]; // all q = 0
        let stream = SzStream {
            float_bits: 32,
            dims,
            capacity,
            mode: SzMode::AbsHybrid {
                eb: 0.01,
                selectors: vec![0x01], // block 0 claims a model
                n_blocks: 1,
                model_bytes: vec![0u8; LinearModel::NBYTES - 1],
            },
            codes_buf: huffman::encode_symbols(&codes, capacity as usize),
            n_unpred: 0,
            unpred_bytes: Vec::new(),
        }
        .serialize(false);
        match SzCompressor::default().decompress::<f32>(&stream) {
            Err(CodecError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    /// An SZ stream with a forged mode byte that no decoder routes:
    /// previously an `unreachable!` in the plain decoder, now `Corrupt`.
    #[test]
    fn unrouted_sz_mode_errors_not_panics() {
        let (data, dims) = sample_field();
        let stream = SzCompressor::default()
            .compress_abs(&data, dims, 0.01)
            .unwrap();
        // Flip the mode tag (byte 5, after magic + float_bits) through all
        // 256 values; decoding must never panic and unknown or
        // inconsistent modes must error.
        for tag in 0u8..=255 {
            let mut bad = stream.clone();
            bad[5] = tag;
            let _ = SzCompressor::default().decompress::<f32>(&bad);
        }
    }
}

/// Allocation bombs found by the L5 taint lint: decode-path length
/// fields that used to size `Vec` allocations straight from the stream.
/// Each forgery claims an absurd length in a header a decoder once
/// trusted; the fixed decoders must reject (or cap the reservation)
/// before any memory proportional to the claim is touched.
mod allocation_bombs {
    use super::*;
    use pwrel::lossless::{lz, rle};

    /// `rle::decompress_bits` previously did
    /// `Vec::with_capacity(read_uvarint(..))` — a forged bitmap header
    /// could demand an arbitrary allocation before any run was decoded.
    /// The fix gates the stored count on the caller's `max_bits`.
    #[test]
    fn rle_bit_count_bomb_is_rejected() {
        for forged_count in [u64::MAX, 1 << 60, 4097] {
            for mode in [0u8, 1] {
                // MODE_RLE / MODE_PACKED header claiming `forged_count` bits.
                let mut forged = vec![mode];
                write_uvarint(&mut forged, forged_count);
                forged.push(1);
                let mut pos = 0;
                assert!(
                    rle::decompress_bits(&forged, &mut pos, 4096).is_err(),
                    "mode={mode} count={forged_count}"
                );
            }
        }
    }

    /// `lz::detokenize` previously did `Vec::with_capacity(raw_len)`
    /// with `raw_len` read straight from the container header. The fix
    /// caps the upfront reservation; growth past the cap is paid for by
    /// actual decoded bytes, so a tiny stream claiming 2^60 bytes fails
    /// at its first token instead of reserving the claim.
    #[test]
    fn lz_raw_len_bomb_is_capped() {
        // MODE_TOKENS (tag 1): claims u64::MAX/2 output bytes, supplies
        // one 4-byte literal run and nothing else.
        let mut forged = vec![1u8];
        write_uvarint(&mut forged, u64::MAX / 2);
        write_uvarint(&mut forged, 4);
        forged.extend_from_slice(b"abcd");
        assert!(lz::decompress(&forged).is_err());

        // MODE_STORED (tag 0): claims 2^60 stored bytes, supplies 4.
        let mut forged = vec![0u8];
        write_uvarint(&mut forged, 1 << 60);
        forged.extend_from_slice(b"abcd");
        assert!(lz::decompress(&forged).is_err());
    }

    /// End to end through the `PWT1` transform container: a forged sign
    /// section whose inner RLE bitmap claims u64::MAX bits must surface
    /// as a decode error from the public codec entry point — the sign
    /// plane is one bit per element, and the decoder knows the element
    /// count before it ever reads the bitmap header.
    #[test]
    fn forged_sign_bitmap_count_errors() {
        let dims = Dims::d2(8, 8);
        let data: Vec<f32> = (0..dims.len())
            .map(|i| (if i % 3 == 0 { -2.0 } else { 1.5 }) * (1.0 + i as f32 * 0.01))
            .collect();
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let stream = codec.compress(&data, dims, 0.01).unwrap();
        assert_eq!(stream[6], 1, "mixed-sign field stores a sign section");
        let sign_len_at = 4 + 1 + 1 + 1 + 8 + 8; // magic, width, base, flag, bounds
        let mut pos = sign_len_at;
        let n = read_uvarint(&stream, &mut pos);
        let sign_end = pos + n as usize;
        // Forged bitmap: RLE mode (tag 0) claiming u64::MAX bits, wrapped
        // in the LZ layer the section format expects.
        let mut bomb = vec![0u8];
        write_uvarint(&mut bomb, u64::MAX);
        bomb.push(1);
        let blob = lz::compress(&bomb);
        let mut bad = stream[..sign_len_at].to_vec();
        write_uvarint(&mut bad, blob.len() as u64);
        bad.extend_from_slice(&blob);
        bad.extend_from_slice(&stream[sign_end..]);
        assert!(codec.decompress::<f32>(&bad).is_err());
    }
}

/// Framed-stream (`PWS1`) forgeries: every corruption class the format
/// is specified to reject — truncated stream header, truncated frame
/// payload, inflated payload-length fields, reordered frames — must
/// surface `Corrupt` from both the sequential registry decoder and the
/// pipelined `ChunkedCodec` decoder, never panic.
mod framed {
    use super::*;
    use pwrel::data::CodecError;
    use pwrel::parallel::{ChunkedCodec, WorkerPool};
    use pwrel::pipeline::{global, CompressOpts, SliceSource, VecSink};

    /// Elements per chunk used by every forgery (4 slices of the 16x24
    /// sample field: 6 frames).
    const CHUNK_ELEMS: usize = 4 * 16;

    /// A valid framed `sz_t` stream over the sample field.
    fn framed_stream() -> Vec<u8> {
        let (data, dims) = sample_field();
        let mut src = SliceSource::new(&data);
        let mut out = Vec::new();
        global()
            .compress_stream::<f32>(
                "sz_t",
                &mut src,
                &mut out,
                dims,
                &CompressOpts::rel(0.01),
                CHUNK_ELEMS,
            )
            .unwrap();
        out
    }

    /// Byte offsets of every structural landmark in a framed stream:
    /// the header end plus, per frame, `(frame_start, len_field_start,
    /// payload_start, payload_len)`.
    fn frame_spans(bytes: &[u8]) -> (usize, Vec<(usize, usize, usize, u64)>) {
        let mut pos = 4 + 1 + 1 + 1 + 1; // magic, version, codec, bits, rank
        for _ in 0..3 {
            read_uvarint(bytes, &mut pos); // nx ny nz
        }
        pos += 8 + 1 + 1; // bound, base, entropy mode (v2)
        let n_chunks = read_uvarint(bytes, &mut pos);
        let header_end = pos;
        let mut frames = Vec::new();
        for _ in 0..n_chunks {
            let frame_start = pos;
            assert_eq!(bytes[pos], 0xF7, "frame marker");
            pos += 1;
            for _ in 0..3 {
                read_uvarint(bytes, &mut pos); // index, start, n_elems
            }
            pos += 8; // bound
            let len_field_start = pos;
            let payload_len = read_uvarint(bytes, &mut pos);
            frames.push((frame_start, len_field_start, pos, payload_len));
            pos += payload_len as usize;
        }
        assert_eq!(pos, bytes.len(), "walker covered the stream");
        (header_end, frames)
    }

    /// Runs a forged stream through both decode engines; each must
    /// return `Corrupt` without panicking.
    fn assert_corrupt(bytes: &[u8], what: &str) {
        let mut sink = VecSink::<f32>::new();
        match global().decompress_stream::<f32>(&mut &bytes[..], &mut sink) {
            Err(CodecError::Corrupt(_)) => {}
            other => panic!("{what}: sequential decode gave {other:?}"),
        }
        let chunked = ChunkedCodec::new(WorkerPool::new(2), CHUNK_ELEMS);
        let mut sink = VecSink::<f32>::new();
        match chunked.decompress_stream::<f32>(global(), &mut &bytes[..], &mut sink) {
            Err(CodecError::Corrupt(_)) => {}
            other => panic!("{what}: pipelined decode gave {other:?}"),
        }
        // The one-shot entry sniffs the magic and routes here too.
        let _ = global().decompress::<f32>(bytes);
    }

    /// Sanity: the unforged stream decodes identically through both
    /// engines.
    #[test]
    fn intact_stream_decodes_on_both_engines() {
        let (data, dims) = sample_field();
        let stream = framed_stream();
        let mut seq = VecSink::<f32>::new();
        let (h, _) = global()
            .decompress_stream::<f32>(&mut &stream[..], &mut seq)
            .unwrap();
        assert_eq!(h.dims, dims);
        let chunked = ChunkedCodec::new(WorkerPool::new(2), CHUNK_ELEMS);
        let mut par = VecSink::<f32>::new();
        chunked
            .decompress_stream::<f32>(global(), &mut &stream[..], &mut par)
            .unwrap();
        let (seq, par) = (seq.into_inner(), par.into_inner());
        assert_eq!(seq, par);
        assert_eq!(seq.len(), data.len());
    }

    /// Every cut inside the stream header is `Corrupt`.
    #[test]
    fn truncated_stream_header_errors() {
        let stream = framed_stream();
        let (header_end, _) = frame_spans(&stream);
        for cut in 0..header_end {
            assert_corrupt(&stream[..cut], &format!("header cut={cut}"));
        }
    }

    /// Cuts inside a frame header or mid-payload are `Corrupt`, for the
    /// first frame and the last.
    #[test]
    fn truncated_mid_frame_errors() {
        let stream = framed_stream();
        let (_, frames) = frame_spans(&stream);
        for &(frame_start, _, payload_start, payload_len) in
            [frames[0], *frames.last().unwrap()].iter()
        {
            for cut in [
                frame_start,                              // before the marker
                frame_start + 1,                          // inside the frame header
                payload_start,                            // zero payload bytes
                payload_start + payload_len as usize / 2, // mid-payload
                payload_start + payload_len as usize - 1, // one byte short
            ] {
                assert_corrupt(&stream[..cut], &format!("frame cut={cut}"));
            }
        }
    }

    /// A payload-length field larger than the remaining bytes is
    /// `Corrupt` — both a modest lie (within the decoder's plausibility
    /// cap, caught by the short read) and an absurd one (beyond the cap,
    /// rejected before any allocation).
    #[test]
    fn inflated_payload_len_errors() {
        let stream = framed_stream();
        let (_, frames) = frame_spans(&stream);
        let (_, len_field_start, payload_start, payload_len) = frames[0];
        for forged_len in [
            stream.len() as u64, // modest: more than remains
            payload_len + 1,     // off by one
            u64::MAX / 2,        // absurd: fails the plausibility cap
        ] {
            let mut bad = stream[..len_field_start].to_vec();
            write_uvarint(&mut bad, forged_len);
            bad.extend_from_slice(&stream[payload_start..]);
            assert_corrupt(&bad, &format!("payload_len={forged_len}"));
        }
    }

    /// Replaces frame 0's payload, fixing its recorded length.
    fn splice_payload(
        stream: &[u8],
        len_field_start: usize,
        payload_start: usize,
        payload_len: u64,
        new_payload: &[u8],
    ) -> Vec<u8> {
        let mut out = stream[..len_field_start].to_vec();
        write_uvarint(&mut out, new_payload.len() as u64);
        out.extend_from_slice(new_payload);
        out.extend_from_slice(&stream[payload_start + payload_len as usize..]);
        out
    }

    /// Interleaved-Huffman descriptor forgeries inside a frame payload:
    /// the 4-way descriptor is validated before any sub-stream byte is
    /// read, so a forged lane count, lane length, marker, or
    /// overflowing length field inside frame 0 must surface `Corrupt`
    /// on both framed engines.
    #[test]
    fn forged_interleaved_descriptor_in_frame_errors() {
        let stream = framed_stream();
        let (_, frames) = frame_spans(&stream);
        let (_, len_field_start, payload_start, payload_len) = frames[0];
        let payload = &stream[payload_start..payload_start + payload_len as usize];
        let (prefix, raw) = super::split_transform(payload);
        // Walker sanity: the re-wrapped (unforged) frame still decodes.
        let rebuilt = splice_payload(
            &stream,
            len_field_start,
            payload_start,
            payload_len,
            &super::rebuild_transform(&prefix, &raw),
        );
        let mut sink = VecSink::<f32>::new();
        global()
            .decompress_stream::<f32>(&mut &rebuilt[..], &mut sink)
            .expect("rebuilt frame decodes");
        for (what, bad_raw) in super::forged_interleaved_descriptors(&raw) {
            let bad = splice_payload(
                &stream,
                len_field_start,
                payload_start,
                payload_len,
                &super::rebuild_transform(&prefix, &bad_raw),
            );
            assert_corrupt(&bad, what);
        }
    }

    /// Swapping two frames breaks the strictly-sequential index rule:
    /// `Corrupt`, not a silently reordered reconstruction.
    #[test]
    fn reordered_frames_error() {
        let stream = framed_stream();
        let (_, frames) = frame_spans(&stream);
        assert!(frames.len() >= 3, "need several frames to reorder");
        let (f0, _, _, _) = frames[0];
        let (f1, _, _, _) = frames[1];
        let (f2, _, _, _) = frames[2];
        let mut bad = stream[..f0].to_vec();
        bad.extend_from_slice(&stream[f1..f2]); // frame 1 first
        bad.extend_from_slice(&stream[f0..f1]); // then frame 0
        bad.extend_from_slice(&stream[f2..]);
        assert_eq!(bad.len(), stream.len());
        assert_corrupt(&bad, "frames 0 and 1 swapped");
    }
}

/// One-shot (`PWU1` unified container) forgeries of the interleaved
/// Huffman descriptor, plus the worker-count determinism contract of the
/// pooled sub-stream decode.
mod interleaved {
    use super::*;
    use pwrel::data::CodecError;
    use pwrel::parallel::{ChunkedCodec, WorkerPool};
    use pwrel::pipeline::{container, global, CompressOpts, SliceSource, VecSink};

    /// Every descriptor forgery inside a one-shot `sz_t` container is
    /// `Corrupt` from the unified decode entry and panics nowhere.
    #[test]
    fn forged_descriptors_are_corrupt_one_shot() {
        let (data, dims) = sample_field();
        let stream = global()
            .compress("sz_t", &data, dims, &CompressOpts::rel(0.01))
            .unwrap();
        let (header, pwt1) = container::unwrap(&stream).unwrap();
        let (prefix, raw) = super::split_transform(pwt1);
        // Walker sanity: re-wrapping the unforged body reproduces the
        // original values.
        let intact = container::wrap(&header, &super::rebuild_transform(&prefix, &raw));
        let (vals, d) = global().decompress::<f32>(&intact).unwrap();
        assert_eq!(d, dims);
        assert_eq!(vals.len(), data.len());
        for (what, bad_raw) in super::forged_interleaved_descriptors(&raw) {
            let bad = container::wrap(&header, &super::rebuild_transform(&prefix, &bad_raw));
            match global().decompress::<f32>(&bad) {
                Err(CodecError::Corrupt(_)) => {}
                other => panic!("{what}: one-shot decode gave {other:?}"),
            }
            try_all_decoders("forged sz_t container", &bad);
        }
    }

    /// The pooled sub-stream decode fan-out is an execution detail:
    /// compressing and decompressing through 1, 2, and 4 workers must
    /// produce byte-identical streams and reconstructions identical to
    /// the sequential engine. Chunks of 4096 elements put every frame
    /// over the pooled-decode threshold, so the parallel lane path is
    /// actually exercised.
    #[test]
    fn worker_count_never_changes_bytes() {
        let dims = Dims::d2(64, 256);
        let data: Vec<f32> = (0..dims.len())
            .map(|i| ((i as f32) * 0.11).sin() * 300.0 + 5.0)
            .collect();
        let chunk = 4096;
        let opts = CompressOpts::rel(0.001);
        let mut seq_out = Vec::new();
        let mut src = SliceSource::new(&data);
        global()
            .compress_stream::<f32>("sz_t", &mut src, &mut seq_out, dims, &opts, chunk)
            .unwrap();
        let mut seq_sink = VecSink::<f32>::new();
        global()
            .decompress_stream::<f32>(&mut &seq_out[..], &mut seq_sink)
            .unwrap();
        let seq_dec = seq_sink.into_inner();
        assert_eq!(seq_dec.len(), data.len());
        for workers in [1usize, 2, 4] {
            let codec = ChunkedCodec::new(WorkerPool::new(workers), chunk);
            let mut out = Vec::new();
            let mut src = SliceSource::new(&data);
            codec
                .compress_stream::<f32>(global(), "sz_t", &mut src, &mut out, dims, &opts)
                .unwrap();
            assert_eq!(out, seq_out, "{workers} workers changed the stream bytes");
            let mut sink = VecSink::<f32>::new();
            codec
                .decompress_stream::<f32>(global(), &mut &out[..], &mut sink)
                .unwrap();
            assert_eq!(
                sink.into_inner(),
                seq_dec,
                "{workers} workers changed the reconstruction"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_mutations_never_panic(
        which in 0usize..6,
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let all = streams();
        let (name, stream) = &all[which];
        let mut bad = stream.clone();
        for (idx, byte) in mutations {
            let i = idx.index(bad.len());
            bad[i] = byte;
        }
        try_all_decoders(name, &bad);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        try_all_decoders("garbage", &bytes);
    }

    // Framed streams under random byte mutations: both streaming decode
    // engines may reject but must never panic.
    #[test]
    fn framed_random_mutations_never_panic(
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        use pwrel::pipeline::{global, CompressOpts, SliceSource, VecSink};
        use pwrel::parallel::{ChunkedCodec, WorkerPool};
        let (data, dims) = sample_field();
        let mut src = SliceSource::new(&data);
        let mut stream = Vec::new();
        global()
            .compress_stream::<f32>(
                "sz_t", &mut src, &mut stream, dims, &CompressOpts::rel(0.01), 4 * 16,
            )
            .unwrap();
        for (idx, byte) in mutations {
            let i = idx.index(stream.len());
            stream[i] = byte;
        }
        let mut sink = VecSink::<f32>::new();
        let _ = global().decompress_stream::<f32>(&mut &stream[..], &mut sink);
        let chunked = ChunkedCodec::new(WorkerPool::new(2), 4 * 16);
        let mut sink = VecSink::<f32>::new();
        let _ = chunked.decompress_stream::<f32>(global(), &mut &stream[..], &mut sink);
    }
}
