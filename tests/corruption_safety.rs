//! Decoder robustness: corrupted or truncated streams must produce errors
//! (or garbage data of the right shape), never panics or unbounded
//! allocations.

use proptest::prelude::*;
use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::Dims;
use pwrel::fpzip::FpzipCompressor;
use pwrel::isabela::IsabelaCompressor;
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;

fn sample_field() -> (Vec<f32>, Dims) {
    let dims = Dims::d2(16, 24);
    let data = (0..dims.len())
        .map(|i| ((i as f32) * 0.37).sin() * 40.0 + 1.0)
        .collect();
    (data, dims)
}

/// All valid streams to mutate.
fn streams() -> Vec<(&'static str, Vec<u8>)> {
    let (data, dims) = sample_field();
    vec![
        (
            "sz_abs",
            SzCompressor::default()
                .compress_abs(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_pwr",
            SzCompressor::default()
                .compress_pwr(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "zfp",
            ZfpCompressor.compress_accuracy(&data, dims, 0.01).unwrap(),
        ),
        (
            "fpzip",
            FpzipCompressor::new(16).compress(&data, dims).unwrap(),
        ),
        (
            "isabela",
            IsabelaCompressor::default()
                .compress_rel(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_t",
            PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
                .compress(&data, dims, 0.01)
                .unwrap(),
        ),
    ]
}

/// Decodes a stream with every decoder; must never panic.
fn try_all_decoders(name: &str, bytes: &[u8]) {
    let _ = SzCompressor::default().decompress::<f32>(bytes);
    let _ = ZfpCompressor.decompress::<f32>(bytes);
    let _ = pwrel::fpzip::decompress::<f32>(bytes);
    let _ = pwrel::isabela::decompress::<f32>(bytes);
    let _ = PwRelCompressor::new(SzCompressor::default(), LogBase::Two).decompress::<f32>(bytes);
    let _ = name;
}

#[test]
fn truncation_never_panics() {
    for (name, stream) in streams() {
        for cut in 0..stream.len().min(64) {
            try_all_decoders(name, &stream[..cut]);
        }
        // Also a few cuts spread through the body.
        for frac in 1..8 {
            let cut = stream.len() * frac / 8;
            try_all_decoders(name, &stream[..cut]);
        }
    }
}

#[test]
fn single_byte_flips_never_panic() {
    for (name, stream) in streams() {
        // Exhaustive over header bytes, sampled over the body.
        let positions: Vec<usize> = (0..stream.len().min(48))
            .chain((48..stream.len()).step_by(37))
            .collect();
        for pos in positions {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = stream.clone();
                bad[pos] ^= flip;
                try_all_decoders(name, &bad);
            }
        }
    }
}

/// Targeted forgeries for decode-path panic sites converted to
/// structured errors (audit lint L1): each test drives the exact parse
/// the site guards and asserts an `Err`, not a panic.
mod forged {
    use super::*;
    use pwrel::data::CodecError;
    use pwrel::lossless::huffman;
    use pwrel::pipeline::container;
    use pwrel::sz::regression::LinearModel;
    use pwrel::sz::{SzMode, SzStream};

    /// `PwRelCompressor::decompress_full` header reads (and the
    /// `bytesio::take_n` f64 reads behind them): every truncation of the
    /// `PWT1` header must error.
    #[test]
    fn truncated_transform_header_errors() {
        let (data, dims) = sample_field();
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let stream = codec.compress(&data, dims, 0.01).unwrap();
        for cut in 0..stream.len().min(40) {
            assert!(
                codec.decompress::<f32>(&stream[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    /// ZFP header byte reads in `decompress`: a stream cut inside the
    /// 7-byte header must error, never index out of bounds.
    #[test]
    fn truncated_zfp_header_errors() {
        let (data, dims) = sample_field();
        let stream = ZfpCompressor.compress_accuracy(&data, dims, 0.01).unwrap();
        for cut in 0..8 {
            assert!(
                ZfpCompressor.decompress::<f32>(&stream[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    /// Unified-container magic probe on inputs shorter than the magic.
    #[test]
    fn short_container_probe_is_safe() {
        assert!(!container::is_unified(b""));
        assert!(!container::is_unified(b"PW"));
        assert!(container::unwrap(b"PWU1").is_err());
    }

    /// `LinearModel::read` on every short prefix.
    #[test]
    fn truncated_regression_model_is_none() {
        let buf = [0u8; LinearModel::NBYTES];
        for len in 0..LinearModel::NBYTES {
            assert!(LinearModel::read(&buf[..len]).is_none(), "len={len}");
        }
    }

    /// A hybrid stream whose selector bitmap promises one regression
    /// model but whose model section is a byte short: the decoder must
    /// surface `Corrupt`, not slice out of bounds.
    #[test]
    fn hybrid_stream_with_truncated_model_errors() {
        let dims = Dims::d1(6); // exactly one 6-point block
        let capacity = 65536u32;
        let radius = capacity / 2;
        let codes = vec![radius; dims.len()]; // all q = 0
        let stream = SzStream {
            float_bits: 32,
            dims,
            capacity,
            mode: SzMode::AbsHybrid {
                eb: 0.01,
                selectors: vec![0x01], // block 0 claims a model
                n_blocks: 1,
                model_bytes: vec![0u8; LinearModel::NBYTES - 1],
            },
            codes_buf: huffman::encode_symbols(&codes, capacity as usize),
            n_unpred: 0,
            unpred_bytes: Vec::new(),
        }
        .serialize(false);
        match SzCompressor::default().decompress::<f32>(&stream) {
            Err(CodecError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    /// An SZ stream with a forged mode byte that no decoder routes:
    /// previously an `unreachable!` in the plain decoder, now `Corrupt`.
    #[test]
    fn unrouted_sz_mode_errors_not_panics() {
        let (data, dims) = sample_field();
        let stream = SzCompressor::default()
            .compress_abs(&data, dims, 0.01)
            .unwrap();
        // Flip the mode tag (byte 5, after magic + float_bits) through all
        // 256 values; decoding must never panic and unknown or
        // inconsistent modes must error.
        for tag in 0u8..=255 {
            let mut bad = stream.clone();
            bad[5] = tag;
            let _ = SzCompressor::default().decompress::<f32>(&bad);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_mutations_never_panic(
        which in 0usize..6,
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let all = streams();
        let (name, stream) = &all[which];
        let mut bad = stream.clone();
        for (idx, byte) in mutations {
            let i = idx.index(bad.len());
            bad[i] = byte;
        }
        try_all_decoders(name, &bad);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        try_all_decoders("garbage", &bytes);
    }
}
