//! Decoder robustness: corrupted or truncated streams must produce errors
//! (or garbage data of the right shape), never panics or unbounded
//! allocations.

use proptest::prelude::*;
use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::Dims;
use pwrel::fpzip::FpzipCompressor;
use pwrel::isabela::IsabelaCompressor;
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;

fn sample_field() -> (Vec<f32>, Dims) {
    let dims = Dims::d2(16, 24);
    let data = (0..dims.len())
        .map(|i| ((i as f32) * 0.37).sin() * 40.0 + 1.0)
        .collect();
    (data, dims)
}

/// All valid streams to mutate.
fn streams() -> Vec<(&'static str, Vec<u8>)> {
    let (data, dims) = sample_field();
    vec![
        (
            "sz_abs",
            SzCompressor::default()
                .compress_abs(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_pwr",
            SzCompressor::default()
                .compress_pwr(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "zfp",
            ZfpCompressor.compress_accuracy(&data, dims, 0.01).unwrap(),
        ),
        (
            "fpzip",
            FpzipCompressor::new(16).compress(&data, dims).unwrap(),
        ),
        (
            "isabela",
            IsabelaCompressor::default()
                .compress_rel(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_t",
            PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
                .compress(&data, dims, 0.01)
                .unwrap(),
        ),
    ]
}

/// Decodes a stream with every decoder; must never panic.
fn try_all_decoders(name: &str, bytes: &[u8]) {
    let _ = SzCompressor::default().decompress::<f32>(bytes);
    let _ = ZfpCompressor.decompress::<f32>(bytes);
    let _ = pwrel::fpzip::decompress::<f32>(bytes);
    let _ = pwrel::isabela::decompress::<f32>(bytes);
    let _ = PwRelCompressor::new(SzCompressor::default(), LogBase::Two).decompress::<f32>(bytes);
    let _ = name;
}

#[test]
fn truncation_never_panics() {
    for (name, stream) in streams() {
        for cut in 0..stream.len().min(64) {
            try_all_decoders(name, &stream[..cut]);
        }
        // Also a few cuts spread through the body.
        for frac in 1..8 {
            let cut = stream.len() * frac / 8;
            try_all_decoders(name, &stream[..cut]);
        }
    }
}

#[test]
fn single_byte_flips_never_panic() {
    for (name, stream) in streams() {
        // Exhaustive over header bytes, sampled over the body.
        let positions: Vec<usize> = (0..stream.len().min(48))
            .chain((48..stream.len()).step_by(37))
            .collect();
        for pos in positions {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = stream.clone();
                bad[pos] ^= flip;
                try_all_decoders(name, &bad);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_mutations_never_panic(
        which in 0usize..6,
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let all = streams();
        let (name, stream) = &all[which];
        let mut bad = stream.clone();
        for (idx, byte) in mutations {
            let i = idx.index(bad.len());
            bad[i] = byte;
        }
        try_all_decoders(name, &bad);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        try_all_decoders("garbage", &bytes);
    }
}
