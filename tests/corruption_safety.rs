//! Decoder robustness: corrupted or truncated streams must produce errors
//! (or garbage data of the right shape), never panics or unbounded
//! allocations.

use proptest::prelude::*;
use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::Dims;
use pwrel::fpzip::FpzipCompressor;
use pwrel::isabela::IsabelaCompressor;
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;

fn sample_field() -> (Vec<f32>, Dims) {
    let dims = Dims::d2(16, 24);
    let data = (0..dims.len())
        .map(|i| ((i as f32) * 0.37).sin() * 40.0 + 1.0)
        .collect();
    (data, dims)
}

/// All valid streams to mutate.
fn streams() -> Vec<(&'static str, Vec<u8>)> {
    let (data, dims) = sample_field();
    vec![
        (
            "sz_abs",
            SzCompressor::default()
                .compress_abs(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_pwr",
            SzCompressor::default()
                .compress_pwr(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "zfp",
            ZfpCompressor.compress_accuracy(&data, dims, 0.01).unwrap(),
        ),
        (
            "fpzip",
            FpzipCompressor::new(16).compress(&data, dims).unwrap(),
        ),
        (
            "isabela",
            IsabelaCompressor::default()
                .compress_rel(&data, dims, 0.01)
                .unwrap(),
        ),
        (
            "sz_t",
            PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
                .compress(&data, dims, 0.01)
                .unwrap(),
        ),
    ]
}

/// Decodes a stream with every decoder; must never panic.
fn try_all_decoders(name: &str, bytes: &[u8]) {
    let _ = SzCompressor::default().decompress::<f32>(bytes);
    let _ = ZfpCompressor.decompress::<f32>(bytes);
    let _ = pwrel::fpzip::decompress::<f32>(bytes);
    let _ = pwrel::isabela::decompress::<f32>(bytes);
    let _ = PwRelCompressor::new(SzCompressor::default(), LogBase::Two).decompress::<f32>(bytes);
    let _ = name;
}

#[test]
fn truncation_never_panics() {
    for (name, stream) in streams() {
        for cut in 0..stream.len().min(64) {
            try_all_decoders(name, &stream[..cut]);
        }
        // Also a few cuts spread through the body.
        for frac in 1..8 {
            let cut = stream.len() * frac / 8;
            try_all_decoders(name, &stream[..cut]);
        }
    }
}

#[test]
fn single_byte_flips_never_panic() {
    for (name, stream) in streams() {
        // Exhaustive over header bytes, sampled over the body.
        let positions: Vec<usize> = (0..stream.len().min(48))
            .chain((48..stream.len()).step_by(37))
            .collect();
        for pos in positions {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = stream.clone();
                bad[pos] ^= flip;
                try_all_decoders(name, &bad);
            }
        }
    }
}

/// Targeted forgeries for decode-path panic sites converted to
/// structured errors (audit lint L1): each test drives the exact parse
/// the site guards and asserts an `Err`, not a panic.
mod forged {
    use super::*;
    use pwrel::data::CodecError;
    use pwrel::lossless::huffman;
    use pwrel::pipeline::container;
    use pwrel::sz::regression::LinearModel;
    use pwrel::sz::{SzMode, SzStream};

    /// `PwRelCompressor::decompress_full` header reads (and the
    /// `bytesio::take_n` f64 reads behind them): every truncation of the
    /// `PWT1` header must error.
    #[test]
    fn truncated_transform_header_errors() {
        let (data, dims) = sample_field();
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let stream = codec.compress(&data, dims, 0.01).unwrap();
        for cut in 0..stream.len().min(40) {
            assert!(
                codec.decompress::<f32>(&stream[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    /// ZFP header byte reads in `decompress`: a stream cut inside the
    /// 7-byte header must error, never index out of bounds.
    #[test]
    fn truncated_zfp_header_errors() {
        let (data, dims) = sample_field();
        let stream = ZfpCompressor.compress_accuracy(&data, dims, 0.01).unwrap();
        for cut in 0..8 {
            assert!(
                ZfpCompressor.decompress::<f32>(&stream[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    /// Unified-container magic probe on inputs shorter than the magic.
    #[test]
    fn short_container_probe_is_safe() {
        assert!(!container::is_unified(b""));
        assert!(!container::is_unified(b"PW"));
        assert!(container::unwrap(b"PWU1").is_err());
    }

    /// `LinearModel::read` on every short prefix.
    #[test]
    fn truncated_regression_model_is_none() {
        let buf = [0u8; LinearModel::NBYTES];
        for len in 0..LinearModel::NBYTES {
            assert!(LinearModel::read(&buf[..len]).is_none(), "len={len}");
        }
    }

    /// A hybrid stream whose selector bitmap promises one regression
    /// model but whose model section is a byte short: the decoder must
    /// surface `Corrupt`, not slice out of bounds.
    #[test]
    fn hybrid_stream_with_truncated_model_errors() {
        let dims = Dims::d1(6); // exactly one 6-point block
        let capacity = 65536u32;
        let radius = capacity / 2;
        let codes = vec![radius; dims.len()]; // all q = 0
        let stream = SzStream {
            float_bits: 32,
            dims,
            capacity,
            mode: SzMode::AbsHybrid {
                eb: 0.01,
                selectors: vec![0x01], // block 0 claims a model
                n_blocks: 1,
                model_bytes: vec![0u8; LinearModel::NBYTES - 1],
            },
            codes_buf: huffman::encode_symbols(&codes, capacity as usize),
            n_unpred: 0,
            unpred_bytes: Vec::new(),
        }
        .serialize(false);
        match SzCompressor::default().decompress::<f32>(&stream) {
            Err(CodecError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    /// An SZ stream with a forged mode byte that no decoder routes:
    /// previously an `unreachable!` in the plain decoder, now `Corrupt`.
    #[test]
    fn unrouted_sz_mode_errors_not_panics() {
        let (data, dims) = sample_field();
        let stream = SzCompressor::default()
            .compress_abs(&data, dims, 0.01)
            .unwrap();
        // Flip the mode tag (byte 5, after magic + float_bits) through all
        // 256 values; decoding must never panic and unknown or
        // inconsistent modes must error.
        for tag in 0u8..=255 {
            let mut bad = stream.clone();
            bad[5] = tag;
            let _ = SzCompressor::default().decompress::<f32>(&bad);
        }
    }
}

/// Framed-stream (`PWS1`) forgeries: every corruption class the format
/// is specified to reject — truncated stream header, truncated frame
/// payload, inflated payload-length fields, reordered frames — must
/// surface `Corrupt` from both the sequential registry decoder and the
/// pipelined `ChunkedCodec` decoder, never panic.
mod framed {
    use super::*;
    use pwrel::data::CodecError;
    use pwrel::parallel::{ChunkedCodec, WorkerPool};
    use pwrel::pipeline::{global, CompressOpts, SliceSource, VecSink};

    /// Elements per chunk used by every forgery (4 slices of the 16x24
    /// sample field: 6 frames).
    const CHUNK_ELEMS: usize = 4 * 16;

    /// A valid framed `sz_t` stream over the sample field.
    fn framed_stream() -> Vec<u8> {
        let (data, dims) = sample_field();
        let mut src = SliceSource::new(&data);
        let mut out = Vec::new();
        global()
            .compress_stream::<f32>(
                "sz_t",
                &mut src,
                &mut out,
                dims,
                &CompressOpts::rel(0.01),
                CHUNK_ELEMS,
            )
            .unwrap();
        out
    }

    fn read_uvarint(bytes: &[u8], pos: &mut usize) -> u64 {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let b = bytes[*pos];
            *pos += 1;
            value |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return value;
            }
            shift += 7;
        }
    }

    fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(b);
                break;
            }
            out.push(b | 0x80);
        }
    }

    /// Byte offsets of every structural landmark in a framed stream:
    /// the header end plus, per frame, `(frame_start, len_field_start,
    /// payload_start, payload_len)`.
    fn frame_spans(bytes: &[u8]) -> (usize, Vec<(usize, usize, usize, u64)>) {
        let mut pos = 4 + 1 + 1 + 1 + 1; // magic, version, codec, bits, rank
        for _ in 0..3 {
            read_uvarint(bytes, &mut pos); // nx ny nz
        }
        pos += 8 + 1; // bound, base
        let n_chunks = read_uvarint(bytes, &mut pos);
        let header_end = pos;
        let mut frames = Vec::new();
        for _ in 0..n_chunks {
            let frame_start = pos;
            assert_eq!(bytes[pos], 0xF7, "frame marker");
            pos += 1;
            for _ in 0..3 {
                read_uvarint(bytes, &mut pos); // index, start, n_elems
            }
            pos += 8; // bound
            let len_field_start = pos;
            let payload_len = read_uvarint(bytes, &mut pos);
            frames.push((frame_start, len_field_start, pos, payload_len));
            pos += payload_len as usize;
        }
        assert_eq!(pos, bytes.len(), "walker covered the stream");
        (header_end, frames)
    }

    /// Runs a forged stream through both decode engines; each must
    /// return `Corrupt` without panicking.
    fn assert_corrupt(bytes: &[u8], what: &str) {
        let mut sink = VecSink::<f32>::new();
        match global().decompress_stream::<f32>(&mut &bytes[..], &mut sink) {
            Err(CodecError::Corrupt(_)) => {}
            other => panic!("{what}: sequential decode gave {other:?}"),
        }
        let chunked = ChunkedCodec::new(WorkerPool::new(2), CHUNK_ELEMS);
        let mut sink = VecSink::<f32>::new();
        match chunked.decompress_stream::<f32>(global(), &mut &bytes[..], &mut sink) {
            Err(CodecError::Corrupt(_)) => {}
            other => panic!("{what}: pipelined decode gave {other:?}"),
        }
        // The one-shot entry sniffs the magic and routes here too.
        let _ = global().decompress::<f32>(bytes);
    }

    /// Sanity: the unforged stream decodes identically through both
    /// engines.
    #[test]
    fn intact_stream_decodes_on_both_engines() {
        let (data, dims) = sample_field();
        let stream = framed_stream();
        let mut seq = VecSink::<f32>::new();
        let (h, _) = global()
            .decompress_stream::<f32>(&mut &stream[..], &mut seq)
            .unwrap();
        assert_eq!(h.dims, dims);
        let chunked = ChunkedCodec::new(WorkerPool::new(2), CHUNK_ELEMS);
        let mut par = VecSink::<f32>::new();
        chunked
            .decompress_stream::<f32>(global(), &mut &stream[..], &mut par)
            .unwrap();
        let (seq, par) = (seq.into_inner(), par.into_inner());
        assert_eq!(seq, par);
        assert_eq!(seq.len(), data.len());
    }

    /// Every cut inside the stream header is `Corrupt`.
    #[test]
    fn truncated_stream_header_errors() {
        let stream = framed_stream();
        let (header_end, _) = frame_spans(&stream);
        for cut in 0..header_end {
            assert_corrupt(&stream[..cut], &format!("header cut={cut}"));
        }
    }

    /// Cuts inside a frame header or mid-payload are `Corrupt`, for the
    /// first frame and the last.
    #[test]
    fn truncated_mid_frame_errors() {
        let stream = framed_stream();
        let (_, frames) = frame_spans(&stream);
        for &(frame_start, _, payload_start, payload_len) in
            [frames[0], *frames.last().unwrap()].iter()
        {
            for cut in [
                frame_start,                              // before the marker
                frame_start + 1,                          // inside the frame header
                payload_start,                            // zero payload bytes
                payload_start + payload_len as usize / 2, // mid-payload
                payload_start + payload_len as usize - 1, // one byte short
            ] {
                assert_corrupt(&stream[..cut], &format!("frame cut={cut}"));
            }
        }
    }

    /// A payload-length field larger than the remaining bytes is
    /// `Corrupt` — both a modest lie (within the decoder's plausibility
    /// cap, caught by the short read) and an absurd one (beyond the cap,
    /// rejected before any allocation).
    #[test]
    fn inflated_payload_len_errors() {
        let stream = framed_stream();
        let (_, frames) = frame_spans(&stream);
        let (_, len_field_start, payload_start, payload_len) = frames[0];
        for forged_len in [
            stream.len() as u64, // modest: more than remains
            payload_len + 1,     // off by one
            u64::MAX / 2,        // absurd: fails the plausibility cap
        ] {
            let mut bad = stream[..len_field_start].to_vec();
            write_uvarint(&mut bad, forged_len);
            bad.extend_from_slice(&stream[payload_start..]);
            assert_corrupt(&bad, &format!("payload_len={forged_len}"));
        }
    }

    /// Swapping two frames breaks the strictly-sequential index rule:
    /// `Corrupt`, not a silently reordered reconstruction.
    #[test]
    fn reordered_frames_error() {
        let stream = framed_stream();
        let (_, frames) = frame_spans(&stream);
        assert!(frames.len() >= 3, "need several frames to reorder");
        let (f0, _, _, _) = frames[0];
        let (f1, _, _, _) = frames[1];
        let (f2, _, _, _) = frames[2];
        let mut bad = stream[..f0].to_vec();
        bad.extend_from_slice(&stream[f1..f2]); // frame 1 first
        bad.extend_from_slice(&stream[f0..f1]); // then frame 0
        bad.extend_from_slice(&stream[f2..]);
        assert_eq!(bad.len(), stream.len());
        assert_corrupt(&bad, "frames 0 and 1 swapped");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_mutations_never_panic(
        which in 0usize..6,
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let all = streams();
        let (name, stream) = &all[which];
        let mut bad = stream.clone();
        for (idx, byte) in mutations {
            let i = idx.index(bad.len());
            bad[i] = byte;
        }
        try_all_decoders(name, &bad);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        try_all_decoders("garbage", &bytes);
    }

    // Framed streams under random byte mutations: both streaming decode
    // engines may reject but must never panic.
    #[test]
    fn framed_random_mutations_never_panic(
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        use pwrel::pipeline::{global, CompressOpts, SliceSource, VecSink};
        use pwrel::parallel::{ChunkedCodec, WorkerPool};
        let (data, dims) = sample_field();
        let mut src = SliceSource::new(&data);
        let mut stream = Vec::new();
        global()
            .compress_stream::<f32>(
                "sz_t", &mut src, &mut stream, dims, &CompressOpts::rel(0.01), 4 * 16,
            )
            .unwrap();
        for (idx, byte) in mutations {
            let i = idx.index(stream.len());
            stream[i] = byte;
        }
        let mut sink = VecSink::<f32>::new();
        let _ = global().decompress_stream::<f32>(&mut &stream[..], &mut sink);
        let chunked = ChunkedCodec::new(WorkerPool::new(2), 4 * 16);
        let mut sink = VecSink::<f32>::new();
        let _ = chunked.decompress_stream::<f32>(global(), &mut &stream[..], &mut sink);
    }
}
