//! Every registered codec through the unified container: proptest
//! round-trips over element types and ranks, plus hostile-input checks
//! (corrupt, truncated, wrong codec id) that must error, never panic.

use proptest::prelude::*;
use pwrel::data::Dims;
use pwrel::pipeline::{global, CompressOpts, CONTAINER_MAGIC};

/// Strictly positive finite values — every roster codec (including the
/// no-point-wise-guarantee zfp_p) decodes these to the right shape, and
/// the transform codecs' relative bound is checkable.
fn positive_f64() -> impl Strategy<Value = f64> {
    (-40i32..40, 0.0f64..1.0).prop_map(|(e, m)| (1.0 + m) * (e as f64).exp2())
}

/// 1D/2D/3D shapes with matched data length.
fn dims_and_len() -> impl Strategy<Value = Dims> {
    prop_oneof![
        (1usize..400).prop_map(Dims::d1),
        (1usize..24, 1usize..24).prop_map(|(a, b)| Dims::d2(a, b)),
        (1usize..10, 1usize..10, 1usize..10).prop_map(|(a, b, c)| Dims::d3(a, b, c)),
    ]
}

fn field() -> impl Strategy<Value = (Dims, Vec<f64>)> {
    // The shim has no prop_flat_map: draw a fixed-size pool and tile it
    // to the drawn shape (max shape is 9x9x9 = 729 < 1000).
    (
        dims_and_len(),
        prop::collection::vec(positive_f64(), 1000..1001),
    )
        .prop_map(|(dims, pool)| {
            let data = (0..dims.len()).map(|i| pool[i % pool.len()]).collect();
            (dims, data)
        })
}

/// Codecs with a point-wise relative guarantee (everything but zfp_p,
/// whose fixed-precision mode only tracks the bound loosely).
const PW_REL_CODECS: [&str; 7] = [
    "sz_t",
    "sz_hybrid_t",
    "zfp_t",
    "sz_abs",
    "sz_pwr",
    "fpzip",
    "isabela",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_codec_round_trips_f32(f in field()) {
        let (dims, data) = f;
        let data: Vec<f32> = data.iter().map(|&v| v as f32).collect();
        for codec in global().iter() {
            let stream = global()
                .compress(codec.name(), &data, dims, &CompressOpts::rel(1e-2))
                .unwrap();
            prop_assert_eq!(&stream[..4], &CONTAINER_MAGIC[..], "{}", codec.name());
            let (dec, d) = global().decompress::<f32>(&stream).unwrap();
            prop_assert_eq!(d, dims, "{}", codec.name());
            prop_assert_eq!(dec.len(), data.len(), "{}", codec.name());
        }
    }

    #[test]
    fn every_codec_round_trips_f64(f in field()) {
        let (dims, data) = f;
        for codec in global().iter() {
            let stream = global()
                .compress(codec.name(), &data, dims, &CompressOpts::rel(1e-2))
                .unwrap();
            let (dec, d) = global().decompress::<f64>(&stream).unwrap();
            prop_assert_eq!(d, dims, "{}", codec.name());
            prop_assert_eq!(dec.len(), data.len(), "{}", codec.name());
        }
    }

    #[test]
    fn rel_bound_holds_through_the_container(f in field()) {
        let (dims, data) = f;
        let data: Vec<f32> = data.iter().map(|&v| v as f32).collect();
        let br = 1e-3;
        for name in ["sz_t", "zfp_t"] {
            let stream = global()
                .compress(name, &data, dims, &CompressOpts::rel(br))
                .unwrap();
            let (dec, _) = global().decompress::<f32>(&stream).unwrap();
            for (&a, &b) in data.iter().zip(&dec) {
                let rel = ((a as f64 - b as f64) / a as f64).abs();
                prop_assert!(rel <= br, "{name}: {a} vs {b} (rel {rel})");
            }
        }
    }

    #[test]
    fn truncations_error_not_panic(f in field(), frac in 0.0f64..1.0) {
        let (dims, data) = f;
        let data: Vec<f32> = data.iter().map(|&v| v as f32).collect();
        let stream = global()
            .compress("sz_t", &data, dims, &CompressOpts::rel(1e-2))
            .unwrap();
        let cut = (stream.len() as f64 * frac) as usize;
        prop_assert!(global().decompress::<f32>(&stream[..cut]).is_err());
    }

    #[test]
    fn byte_flips_never_panic(f in field(), pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let (dims, data) = f;
        let data: Vec<f32> = data.iter().map(|&v| v as f32).collect();
        let mut stream = global()
            .compress("sz_t", &data, dims, &CompressOpts::rel(1e-2))
            .unwrap();
        let pos = ((stream.len() - 1) as f64 * pos_frac) as usize;
        stream[pos] ^= flip;
        // Either a decode error or a (wrong) success — never a panic.
        let _ = global().decompress::<f32>(&stream);
    }
}

#[test]
fn all_point_wise_codecs_honour_the_bound_on_a_fixed_field() {
    let dims = Dims::d3(8, 9, 10);
    let data: Vec<f32> = (0..dims.len())
        .map(|i| ((i as f32) * 0.37).sin().abs() * 10f32.powi((i % 5) as i32 - 2) + 1e-3)
        .collect();
    let br = 1e-2;
    for name in PW_REL_CODECS {
        if name == "sz_abs" {
            continue; // interprets the bound as absolute, not relative
        }
        let stream = global()
            .compress(name, &data, dims, &CompressOpts::rel(br))
            .unwrap();
        let (dec, _) = global().decompress::<f32>(&stream).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            let rel = ((a as f64 - b as f64) / a as f64).abs();
            // ISABELA's spline fit is bounded up to rounding.
            assert!(rel <= br * (1.0 + 1e-9), "{name}: {a} vs {b} (rel {rel})");
        }
    }
}

#[test]
fn wrong_codec_id_errors_not_panics() {
    let data: Vec<f32> = (1..200).map(|i| i as f32).collect();
    let dims = Dims::d1(data.len());
    let mut stream = global()
        .compress("sz_t", &data, dims, &CompressOpts::rel(1e-2))
        .unwrap();
    // Byte 5 is the codec id. Point it at every format-incompatible
    // codec: the payload is an SZ_T stream, so each must fail cleanly.
    // (sz_hybrid_t shares the SZ_T stream format — the predictor choice
    // is recorded in the stream — so it decodes this payload correctly
    // and is excluded.)
    for codec in global()
        .iter()
        .filter(|c| c.name() != "sz_t" && c.name() != "sz_hybrid_t")
    {
        stream[5] = codec.id();
        assert!(
            global().decompress::<f32>(&stream).is_err(),
            "{} decoded a foreign payload",
            codec.name()
        );
    }
    // An unregistered id is invalid outright.
    stream[5] = 250;
    assert!(global().decompress::<f32>(&stream).is_err());
}

#[test]
fn elem_width_mismatch_is_mismatch_error() {
    use pwrel::data::CodecError;
    let data: Vec<f32> = (1..64).map(|i| i as f32).collect();
    let stream = global()
        .compress(
            "zfp_t",
            &data,
            Dims::d1(data.len()),
            &CompressOpts::rel(1e-2),
        )
        .unwrap();
    assert!(matches!(
        global().decompress::<f64>(&stream),
        Err(CodecError::Mismatch(_))
    ));
}

#[test]
fn legacy_streams_still_decode_through_the_registry() {
    use pwrel::core::{LogBase, PwRelCompressor};
    use pwrel::sz::SzCompressor;
    use pwrel::zfp::ZfpCompressor;

    let data: Vec<f32> = (1..3000).map(|i| (i as f32).ln() + 0.5).collect();
    let dims = Dims::d1(data.len());

    // Pre-container streams: raw per-codec magics.
    let legacy_szt = PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
        .compress_fused(&data, dims, 1e-3)
        .unwrap();
    let legacy_zfpt = PwRelCompressor::new(ZfpCompressor, LogBase::Ten)
        .compress_fused(&data, dims, 1e-3)
        .unwrap();
    let legacy_sz = SzCompressor::default()
        .compress_abs(&data, dims, 1e-3)
        .unwrap();

    for (tag, stream) in [
        ("legacy sz_t", legacy_szt),
        ("legacy zfp_t", legacy_zfpt),
        ("legacy sz_abs", legacy_sz),
    ] {
        let (dec, d) = global()
            .decompress::<f32>(&stream)
            .unwrap_or_else(|e| panic!("{tag}: {e:?}"));
        assert_eq!(d, dims, "{tag}");
        assert_eq!(dec.len(), data.len(), "{tag}");
    }
}

#[test]
fn unrecognized_streams_are_mismatch() {
    use pwrel::data::CodecError;
    assert!(matches!(
        global().decompress::<f32>(b"this is not a compressed stream"),
        Err(CodecError::Mismatch(_))
    ));
    assert!(global().decompress::<f32>(&[]).is_err());
}
