//! Feature-composition tests: the extensions must compose with the paper's
//! transform wrapper without weakening any guarantee.

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{nyx, Dims, Scale};
use pwrel::parallel::{ChunkedCodec, WorkerPool};
use pwrel::sz::SzCompressor;

fn hybrid_sz() -> SzCompressor {
    SzCompressor {
        hybrid_predictor: true,
        ..SzCompressor::default()
    }
}

#[test]
fn hybrid_predictor_inside_the_wrapper_is_strictly_bounded() {
    let field = nyx::dark_matter_density(Scale::Small);
    let codec = PwRelCompressor::new(hybrid_sz(), LogBase::Two);
    for br in [1e-3, 1e-1] {
        let stream = codec.compress(&field.data, field.dims, br).unwrap();
        let dec: Vec<f32> = codec.decompress(&stream).unwrap();
        for (&a, &b) in field.data.iter().zip(&dec) {
            if a == 0.0 {
                assert_eq!(b, 0.0);
            } else {
                assert!(((a as f64 - b as f64) / a as f64).abs() <= br);
            }
        }
    }
}

#[test]
fn adaptive_capacity_inside_the_wrapper_is_strictly_bounded() {
    let field = nyx::velocity_x(Scale::Small);
    let br = 1e-2;
    // Estimate capacity in the transformed domain, as a user tuning the
    // wrapped codec would: on the log magnitudes.
    let mags: Vec<f32> = field
        .data
        .iter()
        .map(|v| v.abs().max(1e-30).log2())
        .collect();
    let abs_guess = pwrel::core::theory::abs_bound_for(LogBase::Two, br);
    let sz = SzCompressor::adaptive(&mags, field.dims, abs_guess);
    let codec = PwRelCompressor::new(sz, LogBase::Two);
    let stream = codec.compress(&field.data, field.dims, br).unwrap();
    let dec: Vec<f32> = codec.decompress(&stream).unwrap();
    for (&a, &b) in field.data.iter().zip(&dec) {
        if a != 0.0 {
            assert!(((a as f64 - b as f64) / a as f64).abs() <= br);
        }
    }
}

#[test]
fn chunked_wrapper_composition_preserves_bound_and_zeros() {
    let field = nyx::dark_matter_density(Scale::Small);
    let mut data = field.data.clone();
    for v in data.iter_mut().step_by(97) {
        *v = 0.0;
    }
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    // About five slab chunks, pipelined over three workers.
    let chunked = ChunkedCodec::new(WorkerPool::new(3), field.dims.len().div_ceil(5));
    let br = 1e-2;
    let stream = chunked
        .compress(&data, field.dims, |s, d| codec.compress(s, d, br))
        .unwrap();
    let (dec, dims) = chunked
        .decompress::<f32, _>(&stream, |s| codec.decompress_full(s))
        .unwrap();
    assert_eq!(dims, field.dims);
    for (&a, &b) in data.iter().zip(&dec) {
        if a == 0.0 {
            assert_eq!(b, 0.0, "zeros must survive chunked composition");
        } else {
            assert!(((a as f64 - b as f64) / a as f64).abs() <= br);
        }
    }
}

#[test]
fn spatial_pwr_on_multidim_datasets_beats_nothing_but_stays_bounded() {
    // Changing PWR to spatial blocks for rank >= 2 must keep the bound
    // contract on every dataset field.
    let sz = SzCompressor::default();
    for ds in pwrel::data::all_datasets(Scale::Small) {
        for field in &ds.fields {
            if field.dims.rank() < 2 {
                continue;
            }
            let stream = sz.compress_pwr(&field.data, field.dims, 1e-2).unwrap();
            let (dec, _) = sz.decompress::<f32>(&stream).unwrap();
            for (&a, &b) in field.data.iter().zip(&dec) {
                if a != 0.0 {
                    assert!(
                        ((a as f64 - b as f64) / a as f64).abs() <= 1e-2,
                        "{} in {}",
                        field.name,
                        ds.name
                    );
                }
            }
        }
    }
}

#[test]
fn fixed_rate_zfp_streams_decode_through_generic_decompress() {
    let dims = Dims::d2(32, 48);
    let data: Vec<f32> = (0..dims.len()).map(|i| (i as f32 * 0.05).cos()).collect();
    let zfp = pwrel::zfp::ZfpCompressor;
    let stream = zfp.compress_rate(&data, dims, 10).unwrap();
    let (dec, d) = zfp.decompress::<f32>(&stream).unwrap();
    assert_eq!(d, dims);
    assert_eq!(dec.len(), data.len());
}
