//! Property-based tests over the core invariants.
//!
//! These hammer the contracts the whole reproduction rests on: lossless
//! stages round-trip exactly, lossy codecs never exceed their bounds, and
//! the log transform preserves zeros and signs — for *arbitrary* inputs,
//! not just the synthetic datasets.

use proptest::prelude::*;
use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::Dims;
use pwrel::fpzip::FpzipCompressor;
use pwrel::isabela::IsabelaCompressor;
use pwrel::lossless::{huffman, lz, rle};
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;

/// Finite, non-pathological f32s spanning a wide but bounded range, with
/// zeros mixed in (exponent range where f32 round-off margins are sane).
fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        5 => (-60i32..60, -1.0f64..1.0).prop_map(|(e, m)| {
            ((1.0 + m.abs()) * (e as f64).exp2() * m.signum()) as f32
        }),
        1 => Just(0.0f32),
    ]
}

fn data_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(finite_f32(), 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lz_round_trips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&c).unwrap(), data);
    }

    #[test]
    fn rle_round_trips(bits in prop::collection::vec(any::<bool>(), 0..4096)) {
        let c = rle::compress_bits(&bits);
        let mut pos = 0;
        prop_assert_eq!(rle::decompress_bits(&c, &mut pos, bits.len()).unwrap(), bits);
        prop_assert_eq!(pos, c.len());
    }

    #[test]
    fn huffman_round_trips(syms in prop::collection::vec(0u32..512, 0..2048)) {
        let buf = huffman::encode_symbols(&syms, 512);
        let mut pos = 0;
        prop_assert_eq!(huffman::decode_symbols(&buf, &mut pos).unwrap(), syms);
    }

    #[test]
    fn huffman_single_and_interleaved_decode_agree(
        syms in prop::collection::vec(0u32..512, 0..8192)
    ) {
        // The legacy single-stream format and the 4-way interleaved
        // format are alternative encodings of the same symbols; one
        // decoder entry point must read both back identically.
        let legacy = huffman::encode_symbols_single(&syms, 512);
        let inter = huffman::encode_symbols(&syms, 512);
        let mut pos = 0;
        prop_assert_eq!(huffman::decode_symbols(&legacy, &mut pos).unwrap(), syms.clone());
        prop_assert_eq!(pos, legacy.len());
        let mut pos = 0;
        prop_assert_eq!(huffman::decode_symbols(&inter, &mut pos).unwrap(), syms);
        prop_assert_eq!(pos, inter.len());
    }

    #[test]
    fn sz_abs_bound_always_holds(data in data_vec(), eb_exp in -12i32..2) {
        let eb = (eb_exp as f64).exp2();
        let dims = Dims::d1(data.len());
        let sz = SzCompressor::default();
        let stream = sz.compress_abs(&data, dims, eb).unwrap();
        let (dec, _) = sz.decompress::<f32>(&stream).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            prop_assert!((a as f64 - b as f64).abs() <= eb, "{} vs {} (eb {})", a, b, eb);
        }
    }

    #[test]
    fn zfp_accuracy_bound_always_holds(data in data_vec(), eb_exp in -10i32..2) {
        let eb = (eb_exp as f64).exp2();
        let dims = Dims::d1(data.len());
        let zfp = ZfpCompressor;
        let stream = zfp.compress_accuracy(&data, dims, eb).unwrap();
        let (dec, _) = zfp.decompress::<f32>(&stream).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            prop_assert!((a as f64 - b as f64).abs() <= eb, "{} vs {} (eb {})", a, b, eb);
        }
    }

    #[test]
    fn sz_t_rel_bound_always_holds(data in data_vec(), br_exp in -10i32..-1) {
        let br = (br_exp as f64).exp2();
        let dims = Dims::d1(data.len());
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let stream = codec.compress(&data, dims, br).unwrap();
        let dec: Vec<f32> = codec.decompress(&stream).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            if a == 0.0 {
                prop_assert_eq!(b, 0.0);
            } else {
                let rel = ((a as f64 - b as f64) / a as f64).abs();
                prop_assert!(rel <= br, "{} vs {} rel (br {})", a, b, br);
            }
        }
    }

    #[test]
    fn zfp_t_rel_bound_always_holds(data in data_vec(), br_exp in -8i32..-1) {
        let br = (br_exp as f64).exp2();
        let dims = Dims::d1(data.len());
        let codec = PwRelCompressor::new(ZfpCompressor, LogBase::Two);
        let stream = codec.compress(&data, dims, br).unwrap();
        let dec: Vec<f32> = codec.decompress(&stream).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            if a == 0.0 {
                prop_assert_eq!(b, 0.0);
            } else {
                let rel = ((a as f64 - b as f64) / a as f64).abs();
                prop_assert!(rel <= br, "{} vs {} (br {})", a, b, br);
            }
        }
    }

    #[test]
    fn fpzip_precision_bound_always_holds(data in data_vec(), p in 12u32..30) {
        let dims = Dims::d1(data.len());
        let codec = FpzipCompressor::new(p);
        let bound = pwrel::fpzip::rel_bound_for_precision::<f32>(p);
        let stream = codec.compress(&data, dims).unwrap();
        let (dec, _) = pwrel::fpzip::decompress::<f32>(&stream).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            if a == 0.0 {
                prop_assert_eq!(b.to_bits(), a.to_bits());
            } else {
                let rel = ((a as f64 - b as f64) / a as f64).abs();
                prop_assert!(rel <= bound, "{} vs {} (p {})", a, b, p);
            }
        }
    }

    #[test]
    fn isabela_rel_bound_always_holds(data in data_vec(), br_exp in -8i32..-1) {
        let br = (br_exp as f64).exp2();
        let dims = Dims::d1(data.len());
        let codec = IsabelaCompressor { window: 128, knots: 8 };
        let stream = codec.compress_rel(&data, dims, br).unwrap();
        let (dec, _) = pwrel::isabela::decompress::<f32>(&stream).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            if a == 0.0 {
                prop_assert_eq!(b, 0.0);
            } else {
                let rel = ((a as f64 - b as f64) / a as f64).abs();
                prop_assert!(rel <= br * (1.0 + 1e-12), "{} vs {} (br {})", a, b, br);
            }
        }
    }

    #[test]
    fn sz_2d_bound_holds(rows in 1usize..24, cols in 1usize..24, eb_exp in -10i32..0, seed in any::<u64>()) {
        // Deterministic pseudo-data from the seed, 2D raster.
        let n = rows * cols;
        let mut x = seed | 1;
        let data: Vec<f32> = (0..n).map(|_| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            ((x % 20011) as f32 - 10005.0) / 100.0
        }).collect();
        let eb = (eb_exp as f64).exp2();
        let dims = Dims::d2(rows, cols);
        let sz = SzCompressor::default();
        let (dec, _) = sz.decompress::<f32>(&sz.compress_abs(&data, dims, eb).unwrap()).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            prop_assert!((a as f64 - b as f64).abs() <= eb);
        }
    }
}
