//! Golden-stream compatibility across both container generations.
//!
//! * **Legacy fixtures** (`<codec>_<elem>_<rank>d.bin`) were produced by
//!   the v1 container with single-stream Huffman payloads. They are
//!   decode-only: the current decoder must keep reading them byte-exactly
//!   (and the point-wise bound must hold), but the encoder no longer
//!   produces that format.
//! * **v2 fixtures** (`<codec>_<elem>_<rank>d_v2.bin`) carry the current
//!   format — v2 container header (entropy-mode byte) and, for the SZ
//!   family, 4-way interleaved Huffman payloads. Today's encoder must
//!   reproduce them byte-identically.
//!
//! Every registered codec is covered for f32/f64 × 1D/2D/3D. The input
//! field is derived from a closed-form expression (no RNG, no dataset
//! files), so a fixture mismatch always means the *stream format* moved,
//! never the test harness.
//!
//! Regenerate the v2 fixtures after an intentional format change with:
//!
//! ```text
//! PWREL_REGEN_FIXTURES=1 cargo test --test golden_streams
//! ```
//!
//! Legacy fixtures are never regenerated — the encoder that produced them
//! is gone by design, which is exactly why they are pinned.

use pwrel::data::Dims;
use pwrel::pipeline::{global, CompressOpts};
use std::path::PathBuf;

/// Strictly positive, smoothly varying field all roster codecs accept
/// (zfp_p included), with enough structure to exercise Huffman tables,
/// RLE runs, LZ matches and multi-plane ZFP blocks.
fn fixture_data(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            60.0 + 45.0 * (t * 0.37).sin() * (t * 0.011).cos() + 4.0 * (t * 3.1).sin()
        })
        .collect()
}

/// The fixture shapes: one per rank, equal element count.
fn shapes() -> [Dims; 3] {
    [Dims::d1(240), Dims::d2(16, 15), Dims::d3(6, 8, 5)]
}

fn fixture_path(codec: &str, elem: &str, rank: u8, suffix: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{codec}_{elem}_{rank}d{suffix}.bin"))
}

const REL_BOUND: f64 = 1e-3;

/// Compresses the fixture field for one (codec, elem, shape) cell.
fn encode_cell(codec: &str, elem: &str, dims: Dims) -> Vec<u8> {
    let data = fixture_data(dims.len());
    let opts = CompressOpts::rel(REL_BOUND);
    match elem {
        "f32" => {
            let d: Vec<f32> = data.iter().map(|&x| x as f32).collect();
            global().compress(codec, &d, dims, &opts)
        }
        "f64" => global().compress(codec, &data, dims, &opts),
        _ => unreachable!(),
    }
    .unwrap_or_else(|e| panic!("{codec}/{elem}/{dims:?} compress: {e:?}"))
}

/// Decodes a fixture and checks the point-wise relative bound (skipped
/// for zfp_p, whose fixed-precision mode has no per-point guarantee).
fn check_decode(codec: &str, elem: &str, dims: Dims, stream: &[u8]) {
    let reference = fixture_data(dims.len());
    let decoded: Vec<f64> = match elem {
        "f32" => {
            let (d, got) = global()
                .decompress::<f32>(stream)
                .unwrap_or_else(|e| panic!("{codec}/{elem} decode: {e:?}"));
            assert_eq!(got, dims, "{codec}/{elem}");
            d.into_iter().map(|x| x as f64).collect()
        }
        "f64" => {
            let (d, got) = global()
                .decompress::<f64>(stream)
                .unwrap_or_else(|e| panic!("{codec}/{elem} decode: {e:?}"));
            assert_eq!(got, dims, "{codec}/{elem}");
            d
        }
        _ => unreachable!(),
    };
    assert_eq!(decoded.len(), dims.len(), "{codec}/{elem}");
    if codec != "zfp_p" {
        // f32 cells check against the f32-rounded reference; the codecs
        // guarantee the bound on the values they were handed.
        for (i, (&a, &b)) in reference.iter().zip(&decoded).enumerate() {
            let a = if elem == "f32" { a as f32 as f64 } else { a };
            let rel = ((a - b) / a).abs();
            assert!(
                rel <= REL_BOUND * 1.0000001,
                "{codec}/{elem} idx {i}: rel err {rel:e}"
            );
        }
    }
}

/// Legacy v1 fixtures keep decoding byte-exactly — the old single-stream
/// mode stays a first-class fallback decoder forever.
#[test]
fn legacy_golden_streams_still_decode() {
    let codecs: Vec<&str> = global().iter().map(|c| c.name()).collect();
    for codec in codecs {
        for elem in ["f32", "f64"] {
            for dims in shapes() {
                let path = fixture_path(codec, elem, dims.rank(), "");
                let golden = std::fs::read(&path)
                    .unwrap_or_else(|e| panic!("missing legacy fixture {path:?} ({e})"));
                check_decode(codec, elem, dims, &golden);
            }
        }
    }
}

/// The current encoder reproduces the committed v2 (interleaved-mode)
/// fixtures byte-identically, and they decode within the bound.
#[test]
fn golden_streams_decode_and_reencode_byte_identically() {
    let regen = std::env::var("PWREL_REGEN_FIXTURES").is_ok();
    let codecs: Vec<&str> = global().iter().map(|c| c.name()).collect();
    for codec in codecs {
        for elem in ["f32", "f64"] {
            for dims in shapes() {
                let path = fixture_path(codec, elem, dims.rank(), "_v2");
                let stream = encode_cell(codec, elem, dims);
                if regen {
                    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                    std::fs::write(&path, &stream).unwrap();
                    continue;
                }
                let golden = std::fs::read(&path).unwrap_or_else(|e| {
                    panic!(
                        "missing fixture {path:?} ({e}); run with \
                         PWREL_REGEN_FIXTURES=1 to create it"
                    )
                });
                assert_eq!(
                    stream,
                    golden,
                    "{codec}/{elem}/{}d re-encode differs from the committed \
                     golden stream",
                    dims.rank()
                );
                check_decode(codec, elem, dims, &golden);
            }
        }
    }
}
