//! HPC I/O use case: dumping a multi-field snapshot from many ranks.
//!
//! Reproduces the mechanics of the paper's parallel evaluation on a laptop:
//! real multi-threaded compression of a per-rank NYX shard plus a modeled
//! GPFS write phase, at 1,024–4,096 simulated ranks.
//!
//! ```sh
//! cargo run --release --example parallel_dump
//! ```

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{nyx, Scale};
use pwrel::parallel::{PfsModel, ScalingExperiment, WorkerPool};
use pwrel::sz::SzCompressor;

fn main() {
    let ds = nyx::dataset(Scale::Medium);
    println!(
        "per-rank shard: {} fields, {:.1} MB",
        ds.fields.len(),
        ds.total_bytes() as f64 / 1e6
    );

    let exp = ScalingExperiment {
        name: "SZ_T dump",
        fields: &ds.fields,
        pfs: PfsModel::default(),
        pool: WorkerPool::per_cpu(),
    };
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);

    let ranks = [1024usize, 2048, 4096];
    let (dumps, streams) = exp.dump(&ranks, |f| {
        codec.compress(&f.data, f.dims, 1e-2).expect("compress")
    });
    println!(
        "\ncompression: {:.2}x ratio, {:.2} s/rank on {} threads",
        dumps[0].ratio(),
        dumps[0].compress_seconds,
        exp.pool.workers()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "ranks", "write (s)", "dump (s)", "raw-dump (s)"
    );
    for d in &dumps {
        // What writing *uncompressed* data would cost at the same scale.
        let raw_write = exp
            .pfs
            .write_time(d.raw_bytes_per_rank * d.ranks as u64, d.ranks);
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3}",
            d.ranks,
            d.write_seconds,
            d.total(),
            raw_write
        );
    }

    let loads = exp.load(&ranks, &streams, |s| {
        codec.decompress::<f32>(s).expect("decompress").len()
    });
    println!("\n{:>8} {:>12} {:>12}", "ranks", "read (s)", "load (s)");
    for l in &loads {
        println!(
            "{:>8} {:>12.3} {:>12.3}",
            l.ranks,
            l.read_seconds,
            l.total()
        );
    }
}
