//! Cosmology use case: compressing a NYX-like dark-matter-density field.
//!
//! Density fields are the paper's flagship example for point-wise relative
//! bounds: 84% of the values live in [0, 1] while the tail reaches ~1e4, so
//! an absolute bound tuned to the tail obliterates the dense regions that
//! cosmologists analyse. This example compares SZ in absolute mode against
//! SZ_T at matched compression ratio and reports what happens to the small
//! values.
//!
//! ```sh
//! cargo run --release --example cosmology_density
//! ```

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{nyx, Scale};
use pwrel::metrics::RelErrorStats;
use pwrel::sz::SzCompressor;

fn main() {
    let field = nyx::dark_matter_density(Scale::Medium);
    let raw = field.nbytes();
    println!(
        "field {} ({}), {:.1} MB",
        field.name,
        field.dims,
        raw as f64 / 1e6
    );

    let below_one = field.data.iter().filter(|&&v| v <= 1.0).count();
    println!(
        "{:.1}% of values in [0, 1]; max = {:.1}\n",
        below_one as f64 / field.data.len() as f64 * 100.0,
        field.min_max().unwrap().1
    );

    // Compress with SZ_T at a 1% point-wise relative bound.
    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let rel_stream = sz_t.compress(&field.data, field.dims, 1e-2).expect("sz_t");
    let rel_dec: Vec<f32> = sz_t.decompress(&rel_stream).expect("sz_t dec");
    let target_cr = raw as f64 / rel_stream.len() as f64;

    // Give SZ's absolute mode the same budget: pick the absolute bound that
    // produces (approximately) the same stream size.
    let sz = SzCompressor::default();
    let (mut lo, mut hi) = (1e-8f64, 1e4f64);
    let mut abs_stream = Vec::new();
    for _ in 0..24 {
        let eb = (lo * hi).sqrt();
        abs_stream = sz
            .compress_abs(&field.data, field.dims, eb)
            .expect("sz abs");
        if (raw as f64 / abs_stream.len() as f64) < target_cr {
            lo = eb;
        } else {
            hi = eb;
        }
    }
    let abs_dec: Vec<f32> = sz.decompress(&abs_stream).expect("sz abs dec").0;

    // Compare relative-error behaviour in the dense region (values <= 1).
    let small_idx: Vec<usize> = (0..field.data.len())
        .filter(|&i| field.data[i] > 0.0 && field.data[i] <= 1.0)
        .collect();
    let small_rel_err = |dec: &[f32]| -> (f64, f64) {
        let mut max = 0f64;
        let mut sum = 0f64;
        for &i in &small_idx {
            let e = ((field.data[i] as f64 - dec[i] as f64) / field.data[i] as f64).abs();
            max = max.max(e);
            sum += e;
        }
        (sum / small_idx.len() as f64, max)
    };

    let cr_rel = raw as f64 / rel_stream.len() as f64;
    let cr_abs = raw as f64 / abs_stream.len() as f64;
    let (avg_rel, max_rel) = small_rel_err(&rel_dec);
    let (avg_abs, max_abs) = small_rel_err(&abs_dec);
    println!("at matched compression ratio (~{cr_rel:.1}x vs ~{cr_abs:.1}x):");
    println!("  SZ_T  : dense-region relative error avg {avg_rel:.2e}, max {max_rel:.2e}");
    println!("  SZ_ABS: dense-region relative error avg {avg_abs:.2e}, max {max_abs:.2e}");
    println!(
        "\nSZ_T keeps the dense region {0:.0}x more accurate (by max relative error).",
        max_abs / max_rel
    );

    let stats = RelErrorStats::compute(&field.data, &rel_dec, 1e-2);
    assert!(stats.max_rel <= 1e-2, "bound must hold");
    assert!(
        max_abs > 10.0 * max_rel,
        "abs mode should distort small values"
    );
}
