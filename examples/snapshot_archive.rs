//! Snapshot workflow: compress a whole multi-field NYX snapshot into one
//! archive and read a single field back — the paper's actual production
//! use case (simulations dump many named fields per time step).
//!
//! ```sh
//! cargo run --release --example snapshot_archive
//! ```

use pwrel::data::{nyx, Scale};
use pwrel::metrics::RelErrorStats;
use pwrel::pipeline::{global, CompressOpts};
use pwrel_cli::archive::{pack, unpack, Entry};

fn main() {
    let ds = nyx::dataset(Scale::Medium);
    let bound = 1e-3;
    let opts = CompressOpts::rel(bound);

    // Dump: every field into one archive of unified-container streams.
    let entries: Vec<Entry> = ds
        .fields
        .iter()
        .map(|f| Entry {
            name: f.name.clone(),
            dims: f.dims,
            elem_bits: 32,
            stream: global()
                .compress("sz_t", &f.data, f.dims, &opts)
                .expect("compress"),
        })
        .collect();
    let archive = pack(&entries).expect("pack");
    println!(
        "snapshot: {} fields, {:.1} MB raw -> {:.2} MB archived ({:.2}x)",
        ds.fields.len(),
        ds.total_bytes() as f64 / 1e6,
        archive.len() as f64 / 1e6,
        ds.total_bytes() as f64 / archive.len() as f64
    );

    // Load: pull out just the temperature field. The container header
    // names the codec, so decoding needs no per-codec knowledge.
    let loaded = unpack(&archive).expect("unpack");
    let entry = loaded
        .iter()
        .find(|e| e.name == "temperature")
        .expect("temperature in archive");
    let (restored, _) = global()
        .decompress::<f32>(&entry.stream)
        .expect("decompress");
    let original = ds.field("temperature").unwrap();
    let stats = RelErrorStats::compute(&original.data, &restored, bound);
    println!(
        "extracted '{}' ({}): max rel err {:.2e}, {:.2}% within bound",
        entry.name,
        entry.dims,
        stats.max_rel,
        stats.bounded_fraction * 100.0
    );
    assert!(stats.max_rel <= bound);
    println!("per-field extraction works without touching the other fields.");
}
