//! Snapshot workflow: compress a whole multi-field NYX snapshot into one
//! archive and read a single field back — the paper's actual production
//! use case (simulations dump many named fields per time step).
//!
//! ```sh
//! cargo run --release --example snapshot_archive
//! ```

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{nyx, Scale};
use pwrel::metrics::RelErrorStats;
use pwrel::sz::SzCompressor;
use pwrel_cli::archive::{pack, unpack, Entry};

fn main() {
    let ds = nyx::dataset(Scale::Medium);
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let bound = 1e-3;

    // Dump: every field into one archive.
    let entries: Vec<Entry> = ds
        .fields
        .iter()
        .map(|f| Entry {
            name: f.name.clone(),
            dims: f.dims,
            elem_bits: 32,
            stream: codec.compress(&f.data, f.dims, bound).expect("compress"),
        })
        .collect();
    let archive = pack(&entries);
    println!(
        "snapshot: {} fields, {:.1} MB raw -> {:.2} MB archived ({:.2}x)",
        ds.fields.len(),
        ds.total_bytes() as f64 / 1e6,
        archive.len() as f64 / 1e6,
        ds.total_bytes() as f64 / archive.len() as f64
    );

    // Load: pull out just the temperature field.
    let loaded = unpack(&archive).expect("unpack");
    let entry = loaded
        .iter()
        .find(|e| e.name == "temperature")
        .expect("temperature in archive");
    let restored: Vec<f32> = codec.decompress(&entry.stream).expect("decompress");
    let original = ds.field("temperature").unwrap();
    let stats = RelErrorStats::compute(&original.data, &restored, bound);
    println!(
        "extracted '{}' ({}): max rel err {:.2e}, {:.2}% within bound",
        entry.name,
        entry.dims,
        stats.max_rel,
        stats.bounded_fraction * 100.0
    );
    assert!(stats.max_rel <= bound);
    println!("per-field extraction works without touching the other fields.");
}
