//! Particle-velocity use case: preserving flow directions in HACC-like data.
//!
//! Cosmologists tolerate larger errors on faster particles (the paper's
//! motivation for point-wise relative bounds). This example compresses the
//! three velocity components and measures the *angle skew* between original
//! and reconstructed velocity vectors — Figure 5's metric — for SZ_T and
//! for an absolute-error-bounded baseline of the same stream size.
//!
//! ```sh
//! cargo run --release --example velocity_directions
//! ```

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{hacc, Scale};
use pwrel::metrics::skew;
use pwrel::sz::SzCompressor;

fn main() {
    let fields = [
        hacc::velocity(Scale::Medium, 'x'),
        hacc::velocity(Scale::Medium, 'y'),
        hacc::velocity(Scale::Medium, 'z'),
    ];
    let n = fields[0].data.len();
    println!("{n} particles, 3 components\n");

    // SZ_T at 1% relative bound per component.
    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let mut szt_bytes = 0usize;
    let szt_dec: Vec<Vec<f32>> = fields
        .iter()
        .map(|f| {
            let s = sz_t.compress(&f.data, f.dims, 1e-2).expect("compress");
            szt_bytes += s.len();
            sz_t.decompress(&s).expect("decompress")
        })
        .collect();

    // Absolute baseline with the same total budget.
    let sz = SzCompressor::default();
    let raw_total: usize = fields.iter().map(|f| f.nbytes()).sum();
    let target_cr = raw_total as f64 / szt_bytes as f64;
    let (mut lo, mut hi) = (1e-4f64, 1e5f64);
    let mut abs_eb = 1.0;
    for _ in 0..24 {
        abs_eb = (lo * hi).sqrt();
        let len: usize = fields
            .iter()
            .map(|f| sz.compress_abs(&f.data, f.dims, abs_eb).unwrap().len())
            .sum();
        if (raw_total as f64 / len as f64) < target_cr {
            lo = abs_eb;
        } else {
            hi = abs_eb;
        }
    }
    let abs_dec: Vec<Vec<f32>> = fields
        .iter()
        .map(|f| {
            sz.decompress::<f32>(&sz.compress_abs(&f.data, f.dims, abs_eb).unwrap())
                .unwrap()
                .0
        })
        .collect();

    for (label, dec) in [
        ("SZ_T (pw rel 1e-2)", &szt_dec),
        ("SZ_ABS (same size)", &abs_dec),
    ] {
        let skews = skew::per_particle_skew(
            &fields[0].data,
            &fields[1].data,
            &fields[2].data,
            &dec[0],
            &dec[1],
            &dec[2],
        );
        let mean = skews.iter().sum::<f64>() / skews.len() as f64;
        let max = skews.iter().cloned().fold(0.0f64, f64::max);
        println!("{label:22} mean skew {mean:7.4}°   max skew {max:7.2}°");
    }
    println!("\ncompression ratio: {target_cr:.2}x for both");
    println!("the relative bound keeps every particle's direction; the absolute");
    println!("bound lets slow particles point anywhere.");
}
