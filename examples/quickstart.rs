//! Quickstart: compress a field with a point-wise relative error bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::Dims;
use pwrel::metrics::{compression_ratio, RelErrorStats};
use pwrel::sz::SzCompressor;

fn main() {
    // A synthetic signal spanning nine orders of magnitude, with exact
    // zeros and mixed signs — the case absolute bounds handle poorly.
    let dims = Dims::d1(100_000);
    let data: Vec<f32> = (0..dims.len())
        .map(|i| {
            if i % 1000 == 0 {
                0.0
            } else {
                let magnitude = 10f32.powi((i / 12_500) as i32 - 4);
                let wave = (i as f32 * 0.02).sin();
                wave * magnitude
            }
        })
        .collect();

    // SZ_T: the SZ-like codec wrapped in the paper's log transform.
    let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let rel_bound = 1e-3;

    let compressed = codec.compress(&data, dims, rel_bound).expect("compress");
    let restored: Vec<f32> = codec.decompress(&compressed).expect("decompress");

    let stats = RelErrorStats::compute(&data, &restored, rel_bound);
    println!("points:              {}", data.len());
    println!("requested bound:     {rel_bound:e}");
    println!(
        "compression ratio:   {:.2}x",
        compression_ratio(data.len() * 4, compressed.len())
    );
    println!("max relative error:  {:.3e}", stats.max_rel);
    println!(
        "within bound:        {:.2}%",
        stats.bounded_fraction * 100.0
    );
    println!("zeros kept exact:    {}", stats.broken_zeros == 0);

    assert!(stats.max_rel <= rel_bound);
    assert_eq!(stats.broken_zeros, 0);
    println!("\nevery point respects the point-wise relative bound.");
}
