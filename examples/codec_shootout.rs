//! Compares every point-wise-relative compressor in the workspace on a 2D
//! climate field — a miniature of the paper's Figure 2/3 sweep.
//!
//! ```sh
//! cargo run --release --example codec_shootout
//! ```

use pwrel::core::{LogBase, PwRelCompressor};
use pwrel::data::{cesm, Scale};
use pwrel::fpzip::FpzipCompressor;
use pwrel::isabela::IsabelaCompressor;
use pwrel::metrics::{compression_ratio, RelErrorStats};
use pwrel::sz::SzCompressor;
use pwrel::zfp::ZfpCompressor;
use std::time::Instant;

fn main() {
    let field = cesm::cloud_fraction(Scale::Medium, "CLDHGH", 0xCE51_0001);
    let br = 1e-2;
    println!(
        "field {} ({}), zero fraction {:.1}%, bound {br}\n",
        field.name,
        field.dims,
        field.zero_fraction() * 100.0
    );
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "codec", "CR", "comp (ms)", "dec (ms)", "max rel E", "zeros ok"
    );

    type Run = (&'static str, Box<dyn Fn() -> (Vec<u8>, Vec<f32>)>);
    let sz_t = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
    let zfp_t = PwRelCompressor::new(ZfpCompressor, LogBase::Two);
    let runs: Vec<Run> = vec![
        (
            "SZ_T",
            Box::new({
                let f = field.clone();
                move || {
                    let s = sz_t.compress(&f.data, f.dims, br).unwrap();
                    let d = sz_t.decompress(&s).unwrap();
                    (s, d)
                }
            }),
        ),
        (
            "ZFP_T",
            Box::new({
                let f = field.clone();
                move || {
                    let s = zfp_t.compress(&f.data, f.dims, br).unwrap();
                    let d = zfp_t.decompress(&s).unwrap();
                    (s, d)
                }
            }),
        ),
        (
            "SZ_PWR",
            Box::new({
                let f = field.clone();
                move || {
                    let sz = SzCompressor::default();
                    let s = sz.compress_pwr(&f.data, f.dims, br).unwrap();
                    let d = sz.decompress::<f32>(&s).unwrap().0;
                    (s, d)
                }
            }),
        ),
        (
            "FPZIP",
            Box::new({
                let f = field.clone();
                move || {
                    let fp = FpzipCompressor::for_rel_bound::<f32>(br);
                    let s = fp.compress(&f.data, f.dims).unwrap();
                    let d = pwrel::fpzip::decompress::<f32>(&s).unwrap().0;
                    (s, d)
                }
            }),
        ),
        (
            "ISABELA",
            Box::new({
                let f = field.clone();
                move || {
                    let isa = IsabelaCompressor::default();
                    let s = isa.compress_rel(&f.data, f.dims, br).unwrap();
                    let d = pwrel::isabela::decompress::<f32>(&s).unwrap().0;
                    (s, d)
                }
            }),
        ),
    ];

    for (name, run) in runs {
        let t0 = Instant::now();
        let (stream, dec) = run();
        let elapsed = t0.elapsed().as_secs_f64();
        let stats = RelErrorStats::compute(&field.data, &dec, br);
        println!(
            "{:<8} {:>8.2} {:>12.1} {:>12} {:>12} {:>8}",
            name,
            compression_ratio(field.nbytes(), stream.len()),
            elapsed * 1e3,
            "-",
            if stats.max_rel.is_finite() {
                format!("{:.2e}", stats.max_rel)
            } else {
                "inf".into()
            },
            stats.broken_zeros == 0
        );
    }
    println!("\n(SZ_T should lead the ratio column while staying within the bound)");
}
